//! Property-based tests for the NAND device model.

use proptest::prelude::*;
use vflash_nand::{
    BlockAddr, ChipId, LatencyModel, NandConfig, NandDevice, NandError, Nanos, PageId,
    SpeedProfile,
};

fn arb_profile() -> impl Strategy<Value = SpeedProfile> {
    prop_oneof![
        Just(SpeedProfile::Linear),
        Just(SpeedProfile::Exponential),
        Just(SpeedProfile::Uniform),
        (1usize..8).prop_map(|steps| SpeedProfile::Stepped { steps }),
    ]
}

proptest! {
    /// Speed factors always stay inside [1/ratio, 1] and never increase towards the
    /// bottom of the stack, for any profile and ratio.
    #[test]
    fn speed_factors_bounded_and_monotone(
        pages in 1usize..512,
        ratio in 1.0f64..8.0,
        profile in arb_profile(),
    ) {
        let model = LatencyModel::new(
            Nanos::from_micros(49),
            Nanos::from_micros(600),
            Nanos::from_millis(4),
            Nanos::from_micros(246),
            pages,
            ratio,
            profile,
        );
        let mut previous = f64::INFINITY;
        for i in 0..pages {
            let factor = model.speed_factor(PageId(i));
            prop_assert!(factor <= 1.0 + 1e-12);
            prop_assert!(factor >= 1.0 / ratio - 1e-12);
            prop_assert!(factor <= previous + 1e-12, "factor increased at page {i}");
            previous = factor;
        }
    }

    /// Read latency of a faster page never exceeds that of a slower page, and
    /// totals always include the transfer time.
    #[test]
    fn read_latency_ordering_matches_factors(
        pages in 2usize..256,
        ratio in 1.0f64..6.0,
    ) {
        let model = LatencyModel::new(
            Nanos::from_micros(49),
            Nanos::from_micros(600),
            Nanos::from_millis(4),
            Nanos::from_micros(246),
            pages,
            ratio,
            SpeedProfile::Linear,
        );
        let first = model.read_latency(PageId(0));
        let last = model.read_latency(PageId(pages - 1));
        prop_assert!(last <= first);
        prop_assert_eq!(
            model.read_total(PageId(0)),
            first + Nanos::from_micros(246)
        );
    }

    /// Whatever sequence of program / invalidate / erase operations an FTL issues,
    /// the per-block accounting identity `valid + invalid + free == pages_per_block`
    /// holds, and erase never succeeds while valid pages remain.
    #[test]
    fn block_accounting_identity_under_random_ops(
        ops in proptest::collection::vec(0u8..3, 1..200),
        pages_per_block in 2usize..16,
    ) {
        let config = NandConfig::builder()
            .chips(1)
            .blocks_per_chip(2)
            .pages_per_block(pages_per_block)
            .page_size_bytes(4096)
            .build()
            .unwrap();
        let mut device = NandDevice::new(config);
        let block = BlockAddr::new(ChipId(0), 0);
        let mut next_to_invalidate = 0usize;

        for op in ops {
            match op {
                0 => {
                    // program the next page if possible
                    let _ = device.program_next(block);
                }
                1 => {
                    // invalidate the oldest still-valid page we know about
                    if next_to_invalidate < pages_per_block {
                        let addr = block.page(PageId(next_to_invalidate));
                        if device.invalidate(addr).is_ok() {
                            next_to_invalidate += 1;
                        }
                    }
                }
                _ => {
                    let valid = device.block(block).unwrap().valid_pages();
                    match device.erase(block) {
                        Ok(_) => {
                            prop_assert_eq!(valid, 0, "erase succeeded with valid pages");
                            next_to_invalidate = 0;
                        }
                        Err(NandError::EraseWithValidPages { .. }) => {
                            prop_assert!(valid > 0);
                        }
                        Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
                    }
                }
            }
            let blk = device.block(block).unwrap();
            prop_assert_eq!(
                blk.valid_pages() + blk.invalid_pages() + blk.free_pages(),
                pages_per_block
            );
        }
    }

    /// Program order is strictly sequential: programming any page other than the
    /// next free one is always rejected and leaves the block untouched.
    #[test]
    fn out_of_order_programs_always_rejected(
        target in 0usize..8,
        programmed in 0usize..8,
    ) {
        let config = NandConfig::builder()
            .chips(1)
            .blocks_per_chip(1)
            .pages_per_block(8)
            .page_size_bytes(4096)
            .build()
            .unwrap();
        let mut device = NandDevice::new(config);
        let block = BlockAddr::new(ChipId(0), 0);
        for _ in 0..programmed {
            device.program_next(block).unwrap();
        }
        let before = device.block(block).unwrap().clone();
        if target != programmed {
            prop_assert!(device.program(block, PageId(target)).is_err());
            prop_assert_eq!(device.block(block).unwrap(), &before);
        } else {
            prop_assert!(device.program(block, PageId(target)).is_ok());
        }
    }

    /// Whatever interleaving of allocate / program / invalidate / erase / retire
    /// an FTL issues, each chip's O(1) free-block counter equals a brute-force
    /// recount of blocks in the `Free` state, the garbage-collection candidate
    /// index equals a brute-force scan for full blocks with invalid pages (and
    /// therefore never yields a `Bad` block), the bad-block counter matches a
    /// state scan, and the allocatable count never exceeds the free count.
    #[test]
    fn free_list_accounting_matches_brute_force(
        ops in proptest::collection::vec((0u8..5, 0usize..8, 0usize..6), 1..300),
        chips in 1usize..4,
    ) {
        use vflash_nand::BlockState;

        let blocks_per_chip = 4usize;
        let pages_per_block = 3usize;
        let config = NandConfig::builder()
            .chips(chips)
            .blocks_per_chip(blocks_per_chip)
            .pages_per_block(pages_per_block)
            .page_size_bytes(4096)
            .build()
            .unwrap();
        let mut device = NandDevice::new(config);
        let mut leased: Vec<BlockAddr> = Vec::new();

        for (op, raw_block, raw_page) in ops {
            match op {
                0 => {
                    if let Some(block) = device.allocate_block() {
                        // The pool never hands out a block that is not erased, and
                        // never hands the same block out twice before an erase.
                        prop_assert_eq!(
                            device.block(block).unwrap().state(),
                            BlockState::Free
                        );
                        prop_assert!(!leased.contains(&block), "double allocation");
                        leased.push(block);
                    }
                }
                1 => {
                    let block = BlockAddr::new(
                        ChipId(raw_page % chips),
                        raw_block % blocks_per_chip,
                    );
                    let _ = device.program_next(block);
                }
                2 => {
                    let block = BlockAddr::new(
                        ChipId(raw_block % chips),
                        raw_block % blocks_per_chip,
                    );
                    let _ = device.invalidate(block.page(PageId(raw_page % pages_per_block)));
                }
                3 => {
                    let block = BlockAddr::new(
                        ChipId(raw_page % chips),
                        raw_block % blocks_per_chip,
                    );
                    if device.erase(block).is_ok() {
                        leased.retain(|&b| b != block);
                    }
                }
                _ => {
                    // Retire a block as bad; leased-but-bad blocks leave the
                    // `Free` state, which the identities below must absorb.
                    let block = BlockAddr::new(
                        ChipId(raw_block % chips),
                        raw_page % blocks_per_chip,
                    );
                    device.retire_block(block).unwrap();
                    prop_assert!(
                        matches!(
                            device.program_next(block),
                            Err(NandError::ProgramFailed { .. })
                        ),
                        "bad blocks must reject programs"
                    );
                    prop_assert!(
                        matches!(device.erase(block), Err(NandError::EraseFailed { .. })),
                        "bad blocks must reject erases"
                    );
                }
            }

            // Per-chip O(1) counters vs. brute-force recount.
            for chip_index in 0..chips {
                let chip = device.chip(ChipId(chip_index)).unwrap();
                let recount = chip.iter().filter(|b| b.state() == BlockState::Free).count();
                prop_assert_eq!(chip.free_blocks(), recount, "chip {} free count", chip_index);
                prop_assert!(chip.available_blocks() <= chip.free_blocks());
            }
            prop_assert_eq!(
                device.free_block_count(),
                device.block_addrs()
                    .filter(|&a| device.block(a).unwrap().state() == BlockState::Free)
                    .count()
            );

            // Candidate index vs. brute-force scan.
            let mut candidates: Vec<BlockAddr> = device.gc_candidates().collect();
            candidates.sort();
            let mut expected: Vec<BlockAddr> = device
                .block_addrs()
                .filter(|&a| {
                    let b = device.block(a).unwrap();
                    b.state() == BlockState::Full && b.invalid_pages() > 0
                })
                .collect();
            expected.sort();
            prop_assert_eq!(candidates, expected);

            // Bad-block accounting: the O(chips) counter matches a state scan,
            // and bad blocks are never allocatable.
            prop_assert_eq!(
                device.bad_block_count(),
                device.block_addrs()
                    .filter(|&a| device.block(a).unwrap().state() == BlockState::Bad)
                    .count()
            );
            if let Some(free) = device.any_free_block() {
                prop_assert!(!device.block(free).unwrap().is_bad());
            }

            // The allocatable pool is exactly the free blocks minus leased ones.
            prop_assert_eq!(
                device.available_blocks(),
                device.free_block_count()
                    - leased
                        .iter()
                        .filter(|&&b| device.block(b).unwrap().state() == BlockState::Free)
                        .count()
            );
        }
    }

    /// Device statistics busy time equals the sum of latencies returned to callers.
    #[test]
    fn stats_busy_time_matches_returned_latencies(rounds in 1usize..20) {
        let config = NandConfig::builder()
            .chips(1)
            .blocks_per_chip(4)
            .pages_per_block(4)
            .page_size_bytes(4096)
            .speed_ratio(3.0)
            .build()
            .unwrap();
        let mut device = NandDevice::new(config);
        let mut total = Nanos::ZERO;
        for round in 0..rounds {
            let block = BlockAddr::new(ChipId(0), round % 4);
            if let Ok((page, program)) = device.program_next(block) {
                total += program;
                total += device.read(block.page(page)).unwrap();
            }
        }
        prop_assert_eq!(device.stats().busy_time(), total);
    }
}
