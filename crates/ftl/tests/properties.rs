//! Property-based tests for the baseline FTL and the hot/cold classifiers.

use proptest::prelude::*;
use vflash_ftl::hotcold::{
    FreqTable, HotColdClassifier, MultiHash, SizeCheck, Temperature, TwoLevelLru,
};
use vflash_ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig, FtlError, Lpn};
use vflash_nand::{NandConfig, NandDevice};

fn small_ftl(blocks: usize, pages: usize, over_provisioning: f64) -> ConventionalFtl {
    let device = NandDevice::new(
        NandConfig::builder()
            .chips(1)
            .blocks_per_chip(blocks)
            .pages_per_block(pages)
            .page_size_bytes(4096)
            .build()
            .expect("valid geometry"),
    );
    ConventionalFtl::new(device, FtlConfig { over_provisioning, ..FtlConfig::default() })
        .expect("valid ftl configuration")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any in-range write sequence keeps the mapping table consistent and every
    /// written page readable, regardless of how much garbage collection it forces.
    #[test]
    fn conventional_ftl_never_loses_data(
        writes in proptest::collection::vec(0u64..60, 1..500),
    ) {
        let mut ftl = small_ftl(16, 8, 0.2);
        let logical = ftl.logical_pages();
        let mut written = vec![false; logical as usize];
        for lpn in writes {
            let lpn = lpn % logical;
            ftl.write(Lpn(lpn), 4096).expect("write succeeds");
            written[lpn as usize] = true;
        }
        ftl.mapping().check_consistency().expect("mapping stays consistent");
        for (lpn, was_written) in written.iter().enumerate() {
            let result = ftl.read(Lpn(lpn as u64));
            if *was_written {
                prop_assert!(result.is_ok());
            } else {
                let unmapped = matches!(result, Err(FtlError::UnmappedRead { .. }));
                prop_assert!(unmapped, "unexpected result for unwritten page: {result:?}");
            }
        }
    }

    /// The device never reports more valid pages than the FTL has distinct mapped
    /// LPNs (no leaked or duplicated mappings), and free accounting stays sane.
    #[test]
    fn valid_page_accounting_matches_mapping(
        writes in proptest::collection::vec(0u64..80, 1..600),
    ) {
        let mut ftl = small_ftl(24, 8, 0.15);
        let logical = ftl.logical_pages();
        for lpn in writes {
            ftl.write(Lpn(lpn % logical), 4096).expect("write succeeds");
        }
        let mapped = ftl.mapping().mapped_pages();
        let valid_on_device: usize = ftl
            .device()
            .block_addrs()
            .map(|addr| ftl.device().block(addr).expect("block exists").valid_pages())
            .sum();
        prop_assert_eq!(valid_on_device as u64, mapped);
        prop_assert!(ftl.free_blocks() >= 1);
    }

    /// The size-check classifier is a pure function of the request size.
    #[test]
    fn size_check_is_pure(threshold in 1u32..1_000_000, request in 1u32..10_000_000, lpn in 0u64..1_000) {
        let mut classifier = SizeCheck::new(threshold);
        let first = classifier.classify_write(Lpn(lpn), request);
        let second = classifier.classify_write(Lpn(lpn + 1), request);
        prop_assert_eq!(first, second);
        prop_assert_eq!(first == Temperature::Hot, request < threshold);
    }

    /// The two-level LRU never reports more tracked entries than its capacities, and
    /// an LPN written twice in a row is always hot on the second write.
    #[test]
    fn two_level_lru_respects_capacities(
        lpns in proptest::collection::vec(0u64..50, 1..300),
        hot_cap in 1usize..16,
        candidate_cap in 1usize..16,
    ) {
        let mut lru = TwoLevelLru::new(hot_cap, candidate_cap);
        for &lpn in &lpns {
            lru.classify_write(Lpn(lpn), 4096);
            prop_assert!(lru.hot_len() <= hot_cap);
            prop_assert!(lru.candidate_len() <= candidate_cap);
        }
        let probe = Lpn(999);
        lru.classify_write(probe, 4096);
        prop_assert_eq!(lru.classify_write(probe, 4096), Temperature::Hot);
    }

    /// The frequency table reaches the hot verdict after exactly `threshold`
    /// back-to-back writes (when no aging happens in between).
    #[test]
    fn freq_table_threshold_behaviour(threshold in 1u32..10) {
        let mut table = FreqTable::new(threshold, 1_000_000);
        for i in 1..=threshold {
            let verdict = table.classify_write(Lpn(7), 4096);
            if i < threshold {
                prop_assert_eq!(verdict, Temperature::Cold);
            } else {
                prop_assert_eq!(verdict, Temperature::Hot);
            }
        }
    }

    /// The multi-hash sketch never under-estimates below zero or over-estimates past
    /// the saturating counter maximum, for any write mix.
    #[test]
    fn multi_hash_estimates_stay_bounded(
        lpns in proptest::collection::vec(0u64..1_000, 1..300),
    ) {
        let mut sketch = MultiHash::new(512, 2, 3, 1_000_000);
        for &lpn in &lpns {
            sketch.classify_write(Lpn(lpn), 4096);
        }
        for &lpn in &lpns {
            prop_assert!(sketch.estimate(Lpn(lpn)) <= 15);
            prop_assert!(sketch.estimate(Lpn(lpn)) >= 1);
        }
    }
}
