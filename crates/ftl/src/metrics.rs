//! Host-visible FTL metrics.

use vflash_nand::Nanos;

/// Counters and accumulated latencies maintained by an FTL.
///
/// *Host* metrics cover the requests issued by the workload; *GC* metrics cover the
/// background work (valid-page copies and erases) triggered by those requests. The
/// paper's evaluation reports exactly these quantities: total read latency, total
/// write latency (including GC time charged to writes) and the erased-block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtlMetrics {
    /// Host page reads served.
    pub host_reads: u64,
    /// Host page writes served.
    pub host_writes: u64,
    /// Total latency of host reads.
    pub host_read_time: Nanos,
    /// Total latency of host writes, including garbage-collection time incurred while
    /// serving them.
    pub host_write_time: Nanos,
    /// Valid pages copied by garbage collection.
    pub gc_copied_pages: u64,
    /// Blocks erased by garbage collection.
    pub gc_erased_blocks: u64,
    /// Total time spent inside garbage collection.
    pub gc_time: Nanos,
    /// Pages relocated by hotness-driven migration (zero for the conventional FTL).
    pub migrated_pages: u64,
    /// Page programs issued by the FTL on its own behalf rather than for a host
    /// write: garbage-collection valid-page copies plus bad-block rescue copies.
    /// Together with [`FtlMetrics::host_writes`] this splits the device's physical
    /// program count into its host-visible and FTL-internal halves, which is what
    /// lets an application stacked on top report true end-to-end write
    /// amplification (app WA × FTL WA).
    pub relocation_writes: u64,
    /// Reads (host and GC alike) that needed at least one read-retry step to
    /// pass ECC.
    pub retried_reads: u64,
    /// Total extra latency spent in read-retry steps (host and GC reads alike);
    /// a subset of the read/GC time it was folded into.
    pub read_retry_time: Nanos,
    /// Reads (host or GC) that exhausted the retry ladder and lost their data.
    pub uncorrectable_reads: u64,
    /// Blocks retired as bad after a program or erase failure.
    pub bad_blocks_grown: u64,
    /// Page programs re-driven to a fresh block after a program failure.
    pub remapped_writes: u64,
    /// Device makespan at the moment the FTL entered read-only mode (zero while
    /// the device is still writable).
    pub time_to_read_only: Nanos,
    /// Batched submissions served (one per
    /// `FlashTranslationLayer::submit_batch` call that completed at least one
    /// request). Zero when the host only ever uses the scalar path.
    pub batched_submissions: u64,
    /// Page requests completed through the batched path; a subset of
    /// [`FtlMetrics::host_reads`] + [`FtlMetrics::host_writes`], which count
    /// every request regardless of how it was submitted.
    pub batched_pages: u64,
}

impl FtlMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        FtlMetrics::default()
    }

    /// Mean host read latency (zero if no reads were served).
    pub fn mean_read_latency(&self) -> Nanos {
        if self.host_reads == 0 {
            Nanos::ZERO
        } else {
            self.host_read_time / self.host_reads
        }
    }

    /// Mean host write latency (zero if no writes were served).
    pub fn mean_write_latency(&self) -> Nanos {
        if self.host_writes == 0 {
            Nanos::ZERO
        } else {
            self.host_write_time / self.host_writes
        }
    }

    /// Write amplification factor: physical page programs per host write, where the
    /// physical count is host writes plus GC copies. Hotness-driven migrations are a
    /// subset of the GC copies (they only happen when a page had to be copied
    /// anyway), so they are *not* added again.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            (self.host_writes + self.gc_copied_pages) as f64 / self.host_writes as f64
        }
    }

    /// Physical page programs the device performed: host writes plus every
    /// FTL-internal relocation program (GC copies and bad-block rescues).
    pub fn physical_page_writes(&self) -> u64 {
        self.host_writes + self.relocation_writes
    }

    /// Write amplification including bad-block rescue copies:
    /// [`FtlMetrics::physical_page_writes`] per host write. Equal to
    /// [`FtlMetrics::write_amplification`] on a fault-free device, where GC
    /// copies are the only relocations.
    pub fn relocation_write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            self.physical_page_writes() as f64 / self.host_writes as f64
        }
    }

    /// Records one host read and its latency.
    pub fn record_host_read(&mut self, latency: Nanos) {
        self.host_reads += 1;
        self.host_read_time += latency;
    }

    /// Records one host write and its latency (GC time included by the caller).
    pub fn record_host_write(&mut self, latency: Nanos) {
        self.host_writes += 1;
        self.host_write_time += latency;
    }

    /// Records the outcome of a garbage-collection pass. Every copied page is a
    /// relocation program, so it also counts towards
    /// [`FtlMetrics::relocation_writes`].
    pub fn record_gc(&mut self, copied: u64, erased: u64, time: Nanos) {
        self.gc_copied_pages += copied;
        self.gc_erased_blocks += erased;
        self.gc_time += time;
        self.relocation_writes += copied;
    }

    /// Records pages relocated out of a freshly retired bad block (one program
    /// per surviving valid page rescued).
    pub fn record_rescue(&mut self, pages: u64) {
        self.relocation_writes += pages;
    }

    /// Records pages relocated by hotness-driven migration.
    pub fn record_migration(&mut self, pages: u64) {
        self.migrated_pages += pages;
    }

    /// Records the retry ladder of one read: `retries` steps costing `retry_time`
    /// extra, counted as a retried read only when at least one step was needed.
    pub fn record_read_retries(&mut self, retries: u32, retry_time: Nanos) {
        if retries > 0 {
            self.retried_reads += 1;
            self.read_retry_time += retry_time;
        }
    }

    /// Records a read whose retry ladder was exhausted without correcting the data.
    pub fn record_uncorrectable_read(&mut self) {
        self.uncorrectable_reads += 1;
    }

    /// Records a block retired as bad after a program or erase failure.
    pub fn record_bad_block(&mut self) {
        self.bad_blocks_grown += 1;
    }

    /// Records a page program re-driven to a fresh block after a program failure.
    pub fn record_remap(&mut self) {
        self.remapped_writes += 1;
    }

    /// Records one batched submission that completed `pages` page requests.
    /// Each of those requests has also been recorded individually as a host
    /// read or write; these counters only track *how* they were submitted.
    pub fn record_batch(&mut self, pages: u64) {
        self.batched_submissions += 1;
        self.batched_pages += pages;
    }

    /// Records the transition to read-only mode at device time `makespan`. Only
    /// the first transition is kept.
    pub fn record_read_only(&mut self, makespan: Nanos) {
        if self.time_to_read_only == Nanos::ZERO {
            self.time_to_read_only = makespan;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_zero_counts() {
        let metrics = FtlMetrics::new();
        assert_eq!(metrics.mean_read_latency(), Nanos::ZERO);
        assert_eq!(metrics.mean_write_latency(), Nanos::ZERO);
        assert_eq!(metrics.write_amplification(), 0.0);
    }

    #[test]
    fn recording_accumulates() {
        let mut metrics = FtlMetrics::new();
        metrics.record_host_read(Nanos::from_micros(50));
        metrics.record_host_read(Nanos::from_micros(150));
        metrics.record_host_write(Nanos::from_micros(800));
        metrics.record_gc(3, 1, Nanos::from_millis(5));
        assert_eq!(metrics.host_reads, 2);
        assert_eq!(metrics.mean_read_latency(), Nanos::from_micros(100));
        assert_eq!(metrics.host_writes, 1);
        assert_eq!(metrics.gc_copied_pages, 3);
        assert_eq!(metrics.gc_erased_blocks, 1);
        assert_eq!(metrics.write_amplification(), 4.0);
    }

    #[test]
    fn relocation_writes_cover_gc_copies_and_rescues() {
        let mut metrics = FtlMetrics::new();
        metrics.record_host_write(Nanos::from_micros(800));
        metrics.record_host_write(Nanos::from_micros(800));
        metrics.record_gc(3, 1, Nanos::from_millis(5));
        assert_eq!(metrics.relocation_writes, 3, "GC copies are relocations");
        metrics.record_rescue(2);
        assert_eq!(metrics.relocation_writes, 5);
        assert_eq!(metrics.physical_page_writes(), 7);
        assert_eq!(metrics.relocation_write_amplification(), 3.5);
        // The classic WA excludes rescues, so it stays below the relocation WA
        // once a rescue happened.
        assert_eq!(metrics.write_amplification(), 2.5);
        assert_eq!(FtlMetrics::new().relocation_write_amplification(), 0.0);
    }

    #[test]
    fn reliability_counters_accumulate() {
        let mut metrics = FtlMetrics::new();
        metrics.record_read_retries(0, Nanos::ZERO); // first-sense pass: no count
        assert_eq!(metrics.retried_reads, 0);
        metrics.record_read_retries(3, Nanos::from_micros(75));
        metrics.record_read_retries(1, Nanos::from_micros(25));
        assert_eq!(metrics.retried_reads, 2);
        assert_eq!(metrics.read_retry_time, Nanos::from_micros(100));

        metrics.record_uncorrectable_read();
        metrics.record_bad_block();
        metrics.record_remap();
        assert_eq!(metrics.uncorrectable_reads, 1);
        assert_eq!(metrics.bad_blocks_grown, 1);
        assert_eq!(metrics.remapped_writes, 1);

        metrics.record_read_only(Nanos::from_millis(9));
        metrics.record_read_only(Nanos::from_millis(20)); // sticky: first wins
        assert_eq!(metrics.time_to_read_only, Nanos::from_millis(9));
    }

    #[test]
    fn batch_counters_accumulate() {
        let mut metrics = FtlMetrics::new();
        assert_eq!(metrics.batched_submissions, 0);
        assert_eq!(metrics.batched_pages, 0);
        metrics.record_batch(8);
        metrics.record_batch(3);
        assert_eq!(metrics.batched_submissions, 2);
        assert_eq!(metrics.batched_pages, 11);
    }
}
