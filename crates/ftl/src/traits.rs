//! The interface shared by all flash translation layers in the workspace.

use vflash_nand::{NandDevice, Nanos};

use crate::error::FtlError;
use crate::io::{Completion, IoRequest};
use crate::metrics::FtlMetrics;
use crate::types::Lpn;

/// A flash translation layer that the trace-driven simulator can exercise.
///
/// Both the conventional baseline ([`crate::ConventionalFtl`]) and the PPB strategy
/// (`vflash_ppb::PpbFtl`) implement this trait, which is what makes the paper's
/// "conventional FTL vs FTL with PPB strategy" comparison a one-line swap in the
/// experiment harness.
///
/// # Submission/completion model
///
/// The required request entry point is [`submit`](FlashTranslationLayer::submit):
/// one [`IoRequest`] in, one [`Completion`] out, carrying the host latency, the
/// timed device operations charged (with their chips, when
/// [op tracing](NandDevice::set_op_tracing) is enabled) and the GC attribution.
/// The scalar [`read`](FlashTranslationLayer::read) and
/// [`write`](FlashTranslationLayer::write) methods are default-implemented
/// wrappers over `submit`, so existing call sites keep working unchanged —
/// implementors migrating from the scalar API move their `read`/`write` bodies
/// into `submit` and delete the scalar overrides.
///
/// The trait is object-safe so harness code can hold `Box<dyn FlashTranslationLayer>`.
pub trait FlashTranslationLayer {
    /// A short human-readable name used in experiment reports
    /// (e.g. `"conventional"`, `"ppb"`).
    fn name(&self) -> &str;

    /// Number of logical pages exported to the host.
    fn logical_pages(&self) -> u64;

    /// Serves one submitted single-page request and returns its completion.
    ///
    /// The completion's `ops` list is populated only while the underlying device
    /// has op tracing enabled (see [`NandDevice::set_op_tracing`]); with tracing
    /// off the implementation must not pay for provenance collection.
    ///
    /// # Errors
    ///
    /// * [`FtlError::LpnOutOfRange`] if the request's LPN is beyond the exported
    ///   capacity.
    /// * [`FtlError::UnmappedRead`] for reads of never-written pages.
    /// * [`FtlError::OutOfSpace`] for writes when garbage collection cannot free
    ///   any space.
    /// * [`FtlError::ReadOnly`] for writes once bad-block growth has exhausted the
    ///   spare capacity (fault injection only).
    ///
    /// # Example
    ///
    /// ```
    /// use vflash_ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig, IoRequest, Lpn};
    /// use vflash_nand::{NandConfig, NandDevice, Nanos};
    ///
    /// # fn main() -> Result<(), vflash_ftl::FtlError> {
    /// let device = NandDevice::new(NandConfig::small());
    /// let mut ftl = ConventionalFtl::new(device, FtlConfig::default())?;
    ///
    /// let write = ftl.submit(IoRequest::write(Lpn(7), 4096))?;
    /// let read = ftl.submit(IoRequest::read(Lpn(7)))?;
    /// assert!(write.latency > read.latency, "programs cost more than reads");
    /// // Provenance is only collected while op tracing is enabled.
    /// assert!(read.ops.is_empty());
    /// ftl.device_mut().set_op_tracing(true);
    /// let traced = ftl.submit(IoRequest::read(Lpn(7)))?;
    /// assert_eq!(traced.ops.len(), 1, "one timed device op, with its chip");
    /// // The span resolves against the device's op arena.
    /// assert_eq!(ftl.device().ops(traced.ops)[0].latency, traced.latency);
    /// # Ok(())
    /// # }
    /// ```
    fn submit(&mut self, request: IoRequest) -> Result<Completion, FtlError>;

    /// Serves a host read of one logical page, returning the latency charged to the
    /// host. Wrapper over [`submit`](FlashTranslationLayer::submit).
    ///
    /// # Errors
    ///
    /// * [`FtlError::LpnOutOfRange`] if `lpn` is beyond the exported capacity.
    /// * [`FtlError::UnmappedRead`] if the page has never been written.
    fn read(&mut self, lpn: Lpn) -> Result<Nanos, FtlError> {
        self.submit(IoRequest::read(lpn)).map(|completion| completion.latency)
    }

    /// Serves a host write of one logical page, returning the latency charged to the
    /// host (including any garbage-collection time incurred). Wrapper over
    /// [`submit`](FlashTranslationLayer::submit).
    ///
    /// `request_bytes` is the size of the *original* host request this page write
    /// belongs to; first-stage hot/cold classifiers such as the request-size check use
    /// it as their hint.
    ///
    /// # Errors
    ///
    /// * [`FtlError::LpnOutOfRange`] if `lpn` is beyond the exported capacity.
    /// * [`FtlError::OutOfSpace`] if garbage collection cannot free any space.
    fn write(&mut self, lpn: Lpn, request_bytes: u32) -> Result<Nanos, FtlError> {
        self.submit(IoRequest::write(lpn, request_bytes)).map(|completion| completion.latency)
    }

    /// Cumulative host and GC metrics.
    fn metrics(&self) -> &FtlMetrics;

    /// Whether the FTL has permanently entered read-only mode because bad-block
    /// growth exhausted the spare capacity. Writes return [`FtlError::ReadOnly`]
    /// from then on; reads are still served. Defaults to `false` for FTLs that do
    /// not model end-of-life.
    fn is_read_only(&self) -> bool {
        false
    }

    /// The underlying device, for wear and state inspection.
    fn device(&self) -> &NandDevice;

    /// Mutable access to the underlying device, for *instrumentation only* —
    /// enabling op tracing, resetting statistics. Callers must not mutate flash
    /// state (program/invalidate/erase) behind the FTL's back: the mapping table
    /// and area bookkeeping would not follow.
    fn device_mut(&mut self) -> &mut NandDevice;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_boxed(_: &mut dyn FlashTranslationLayer) {}
        fn _holds_boxed(_: Box<dyn FlashTranslationLayer>) {}
    }

    /// The default scalar wrappers forward to `submit` and unwrap the latency.
    #[test]
    fn scalar_wrappers_forward_to_submit() {
        struct Recorder {
            metrics: FtlMetrics,
            device: NandDevice,
            submitted: Vec<IoRequest>,
        }
        impl FlashTranslationLayer for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn logical_pages(&self) -> u64 {
                16
            }
            fn submit(&mut self, request: IoRequest) -> Result<Completion, FtlError> {
                self.submitted.push(request);
                Ok(Completion::new(Nanos::from_micros(7)))
            }
            fn metrics(&self) -> &FtlMetrics {
                &self.metrics
            }
            fn device(&self) -> &NandDevice {
                &self.device
            }
            fn device_mut(&mut self) -> &mut NandDevice {
                &mut self.device
            }
        }

        let mut ftl = Recorder {
            metrics: FtlMetrics::new(),
            device: NandDevice::new(vflash_nand::NandConfig::small()),
            submitted: Vec::new(),
        };
        assert_eq!(ftl.read(Lpn(3)).unwrap(), Nanos::from_micros(7));
        assert_eq!(ftl.write(Lpn(4), 512).unwrap(), Nanos::from_micros(7));
        assert_eq!(
            ftl.submitted,
            vec![IoRequest::read(Lpn(3)), IoRequest::write(Lpn(4), 512)]
        );
    }
}
