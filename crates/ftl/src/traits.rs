//! The interface shared by all flash translation layers in the workspace.

use vflash_nand::{ChipClocks, NandDevice, Nanos, OpSpan};

use crate::batch::BatchCompletion;
use crate::error::FtlError;
use crate::io::{Completion, IoRequest};
use crate::metrics::FtlMetrics;
use crate::types::Lpn;

/// A flash translation layer that the trace-driven simulator can exercise.
///
/// Both the conventional baseline ([`crate::ConventionalFtl`]) and the PPB strategy
/// (`vflash_ppb::PpbFtl`) implement this trait, which is what makes the paper's
/// "conventional FTL vs FTL with PPB strategy" comparison a one-line swap in the
/// experiment harness.
///
/// # Submission/completion model
///
/// The required request entry point is [`submit`](FlashTranslationLayer::submit):
/// one [`IoRequest`] in, one [`Completion`] out, carrying the host latency, the
/// timed device operations charged (with their chips, when
/// [op tracing](NandDevice::set_op_tracing) is enabled) and the GC attribution.
/// The scalar [`read`](FlashTranslationLayer::read) and
/// [`write`](FlashTranslationLayer::write) methods are default-implemented
/// wrappers over `submit`, so existing call sites keep working unchanged —
/// implementors migrating from the scalar API move their `read`/`write` bodies
/// into `submit` and delete the scalar overrides.
///
/// The trait is object-safe so harness code can hold `Box<dyn FlashTranslationLayer>`.
pub trait FlashTranslationLayer {
    /// A short human-readable name used in experiment reports
    /// (e.g. `"conventional"`, `"ppb"`).
    fn name(&self) -> &str;

    /// Number of logical pages exported to the host.
    fn logical_pages(&self) -> u64;

    /// Serves one submitted single-page request and returns its completion.
    ///
    /// The completion's `ops` list is populated only while the underlying device
    /// has op tracing enabled (see [`NandDevice::set_op_tracing`]); with tracing
    /// off the implementation must not pay for provenance collection.
    ///
    /// # Errors
    ///
    /// * [`FtlError::LpnOutOfRange`] if the request's LPN is beyond the exported
    ///   capacity.
    /// * [`FtlError::UnmappedRead`] for reads of never-written pages.
    /// * [`FtlError::OutOfSpace`] for writes when garbage collection cannot free
    ///   any space.
    /// * [`FtlError::ReadOnly`] for writes once bad-block growth has exhausted the
    ///   spare capacity (fault injection only).
    ///
    /// # Example
    ///
    /// ```
    /// use vflash_ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig, IoRequest, Lpn};
    /// use vflash_nand::{NandConfig, NandDevice, Nanos};
    ///
    /// # fn main() -> Result<(), vflash_ftl::FtlError> {
    /// let device = NandDevice::new(NandConfig::small());
    /// let mut ftl = ConventionalFtl::new(device, FtlConfig::default())?;
    ///
    /// let write = ftl.submit(IoRequest::write(Lpn(7), 4096))?;
    /// let read = ftl.submit(IoRequest::read(Lpn(7)))?;
    /// assert!(write.latency > read.latency, "programs cost more than reads");
    /// // Provenance is only collected while op tracing is enabled.
    /// assert!(read.ops.is_empty());
    /// ftl.device_mut().set_op_tracing(true);
    /// let traced = ftl.submit(IoRequest::read(Lpn(7)))?;
    /// assert_eq!(traced.ops.len(), 1, "one timed device op, with its chip");
    /// // The span resolves against the device's op arena.
    /// assert_eq!(ftl.device().ops(traced.ops)[0].latency, traced.latency);
    /// # Ok(())
    /// # }
    /// ```
    fn submit(&mut self, request: IoRequest) -> Result<Completion, FtlError>;

    /// Serves a host read of one logical page, returning the latency charged to the
    /// host. Wrapper over [`submit`](FlashTranslationLayer::submit).
    ///
    /// # Errors
    ///
    /// * [`FtlError::LpnOutOfRange`] if `lpn` is beyond the exported capacity.
    /// * [`FtlError::UnmappedRead`] if the page has never been written.
    fn read(&mut self, lpn: Lpn) -> Result<Nanos, FtlError> {
        self.submit(IoRequest::read(lpn)).map(|completion| completion.latency)
    }

    /// Serves a host write of one logical page, returning the latency charged to the
    /// host (including any garbage-collection time incurred). Wrapper over
    /// [`submit`](FlashTranslationLayer::submit).
    ///
    /// `request_bytes` is the size of the *original* host request this page write
    /// belongs to; first-stage hot/cold classifiers such as the request-size check use
    /// it as their hint.
    ///
    /// # Errors
    ///
    /// * [`FtlError::LpnOutOfRange`] if `lpn` is beyond the exported capacity.
    /// * [`FtlError::OutOfSpace`] if garbage collection cannot free any space.
    fn write(&mut self, lpn: Lpn, request_bytes: u32) -> Result<Nanos, FtlError> {
        self.submit(IoRequest::write(lpn, request_bytes)).map(|completion| completion.latency)
    }

    /// Serves a batch of requests submitted together and returns the batch
    /// completion: per-request scalar completions plus the chip-parallel
    /// schedule.
    ///
    /// # Semantics
    ///
    /// The requests are served **in submission order** through
    /// [`submit`](FlashTranslationLayer::submit), so mapping updates, GC
    /// triggers, fault draws and per-request attribution are bit-identical to
    /// submitting each request alone — batching never changes device state,
    /// only time accounting. Every request is eligible to issue at the batch
    /// start; each of its timed device ops starts when both its predecessor in
    /// the request's own chain and its chip are ready
    /// ([`ChipClocks::play_op`] — the same rule the replay engine's event
    /// calendar applies), and the batch completes at the resulting makespan.
    ///
    /// Guaranteed bounds, which the property suite pins down:
    ///
    /// * `makespan <= serial_time()` — overlap never slows a batch down;
    /// * `makespan >=` the busiest single chip's total op time — a chip's ops
    ///   always serialise;
    /// * a one-request batch has `makespan == completions[0].latency` and is
    ///   bit-identical to scalar `submit`.
    ///
    /// Scheduling needs op→chip provenance, so the default implementation
    /// enables [op tracing](NandDevice::set_op_tracing) for the duration of
    /// the batch if the caller had it off — and then restores the off state
    /// (clearing the arena) and blanks the returned op spans, exactly matching
    /// what scalar `submit` returns with tracing off. With tracing already on,
    /// spans are kept and stay resolvable against the arena.
    ///
    /// # Errors
    ///
    /// The first failing request aborts the batch with its error; earlier
    /// requests in the batch have already been applied to the device, exactly
    /// as if they had been submitted serially.
    fn submit_batch(&mut self, requests: &[IoRequest]) -> Result<BatchCompletion, FtlError> {
        if requests.is_empty() {
            return Ok(BatchCompletion::default());
        }
        let caller_traced = self.device().op_tracing();
        if !caller_traced {
            self.device_mut().set_op_tracing(true);
        }
        let mut clocks = ChipClocks::new(self.device().config().chips());
        let mut batch = BatchCompletion {
            completions: Vec::with_capacity(requests.len()),
            finish_times: Vec::with_capacity(requests.len()),
            makespan: Nanos::ZERO,
        };
        let mut first_error = None;
        for &request in requests {
            let mark = self.device().op_mark();
            let completion = match self.submit(request) {
                Ok(completion) => completion,
                Err(error) => {
                    first_error = Some(error);
                    break;
                }
            };
            // Replay the request's op chain through the per-chip clocks: ops
            // within one request serialise (each starts no earlier than its
            // predecessor's end), ops of different requests overlap whenever
            // they sit on different chips.
            let mut now = Nanos::ZERO;
            for op in self.device().ops(self.device().ops_since(mark)) {
                now = clocks.play_op(op.chip.0, now, op.latency);
            }
            batch.finish_times.push(now);
            batch.completions.push(completion);
        }
        batch.makespan = clocks.makespan();
        if !caller_traced {
            // Restore the caller's tracing-off state. This clears the op
            // arena, so the spans inside the returned completions would be
            // stale — blank them, which is also exactly what scalar `submit`
            // reports with tracing off.
            self.device_mut().set_op_tracing(false);
            for completion in &mut batch.completions {
                completion.ops = OpSpan::EMPTY;
            }
        }
        match first_error {
            Some(error) => Err(error),
            None => {
                self.note_batch(batch.completions.len() as u64);
                Ok(batch)
            }
        }
    }

    /// Bookkeeping hook called once per
    /// [`submit_batch`](FlashTranslationLayer::submit_batch) with the number
    /// of page requests completed. FTLs that keep [`FtlMetrics`] override
    /// this to bump the batching counters; the default is a no-op so minimal
    /// implementations stay minimal.
    fn note_batch(&mut self, _pages: u64) {}

    /// Hints how many write lanes the host keeps in flight. An FTL that honors
    /// the hint keeps up to `lanes` active blocks open for the host write
    /// stream and rotates consecutive page programs across them; because the
    /// device's free-list hands out blocks round-robin across chips, the lanes
    /// land on different dies and a [`submit_batch`] of consecutive writes
    /// overlaps on the per-chip clocks instead of serializing behind a single
    /// active block.
    ///
    /// `lanes == 1` must reproduce the unstriped placement bit-for-bit — it is
    /// the default, and hosts submitting at queue depth 1 never call this. The
    /// default implementation ignores the hint (placement stays unstriped).
    ///
    /// [`submit_batch`]: FlashTranslationLayer::submit_batch
    fn set_write_stripe(&mut self, lanes: usize) {
        let _ = lanes;
    }

    /// Cumulative host and GC metrics.
    fn metrics(&self) -> &FtlMetrics;

    /// Whether the FTL has permanently entered read-only mode because bad-block
    /// growth exhausted the spare capacity. Writes return [`FtlError::ReadOnly`]
    /// from then on; reads are still served. Defaults to `false` for FTLs that do
    /// not model end-of-life.
    fn is_read_only(&self) -> bool {
        false
    }

    /// The underlying device, for wear and state inspection.
    fn device(&self) -> &NandDevice;

    /// Mutable access to the underlying device, for *instrumentation only* —
    /// enabling op tracing, resetting statistics. Callers must not mutate flash
    /// state (program/invalidate/erase) behind the FTL's back: the mapping table
    /// and area bookkeeping would not follow.
    fn device_mut(&mut self) -> &mut NandDevice;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_boxed(_: &mut dyn FlashTranslationLayer) {}
        fn _holds_boxed(_: Box<dyn FlashTranslationLayer>) {}
    }

    /// The default scalar wrappers forward to `submit` and unwrap the latency.
    #[test]
    fn scalar_wrappers_forward_to_submit() {
        struct Recorder {
            metrics: FtlMetrics,
            device: NandDevice,
            submitted: Vec<IoRequest>,
        }
        impl FlashTranslationLayer for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn logical_pages(&self) -> u64 {
                16
            }
            fn submit(&mut self, request: IoRequest) -> Result<Completion, FtlError> {
                self.submitted.push(request);
                Ok(Completion::new(Nanos::from_micros(7)))
            }
            fn metrics(&self) -> &FtlMetrics {
                &self.metrics
            }
            fn device(&self) -> &NandDevice {
                &self.device
            }
            fn device_mut(&mut self) -> &mut NandDevice {
                &mut self.device
            }
        }

        let mut ftl = Recorder {
            metrics: FtlMetrics::new(),
            device: NandDevice::new(vflash_nand::NandConfig::small()),
            submitted: Vec::new(),
        };
        assert_eq!(ftl.read(Lpn(3)).unwrap(), Nanos::from_micros(7));
        assert_eq!(ftl.write(Lpn(4), 512).unwrap(), Nanos::from_micros(7));
        assert_eq!(
            ftl.submitted,
            vec![IoRequest::read(Lpn(3)), IoRequest::write(Lpn(4), 512)]
        );
    }
}
