//! The interface shared by all flash translation layers in the workspace.

use vflash_nand::{NandDevice, Nanos};

use crate::error::FtlError;
use crate::metrics::FtlMetrics;
use crate::types::Lpn;

/// A flash translation layer that the trace-driven simulator can exercise.
///
/// Both the conventional baseline ([`crate::ConventionalFtl`]) and the PPB strategy
/// (`vflash_ppb::PpbFtl`) implement this trait, which is what makes the paper's
/// "conventional FTL vs FTL with PPB strategy" comparison a one-line swap in the
/// experiment harness.
///
/// The trait is object-safe so harness code can hold `Box<dyn FlashTranslationLayer>`.
pub trait FlashTranslationLayer {
    /// A short human-readable name used in experiment reports
    /// (e.g. `"conventional"`, `"ppb"`).
    fn name(&self) -> &str;

    /// Number of logical pages exported to the host.
    fn logical_pages(&self) -> u64;

    /// Serves a host read of one logical page, returning the latency charged to the
    /// host.
    ///
    /// # Errors
    ///
    /// * [`FtlError::LpnOutOfRange`] if `lpn` is beyond the exported capacity.
    /// * [`FtlError::UnmappedRead`] if the page has never been written.
    fn read(&mut self, lpn: Lpn) -> Result<Nanos, FtlError>;

    /// Serves a host write of one logical page, returning the latency charged to the
    /// host (including any garbage-collection time incurred).
    ///
    /// `request_bytes` is the size of the *original* host request this page write
    /// belongs to; first-stage hot/cold classifiers such as the request-size check use
    /// it as their hint.
    ///
    /// # Errors
    ///
    /// * [`FtlError::LpnOutOfRange`] if `lpn` is beyond the exported capacity.
    /// * [`FtlError::OutOfSpace`] if garbage collection cannot free any space.
    fn write(&mut self, lpn: Lpn, request_bytes: u32) -> Result<Nanos, FtlError>;

    /// Cumulative host and GC metrics.
    fn metrics(&self) -> &FtlMetrics;

    /// The underlying device, for wear and state inspection.
    fn device(&self) -> &NandDevice;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_boxed(_: &mut dyn FlashTranslationLayer) {}
        fn _holds_boxed(_: Box<dyn FlashTranslationLayer>) {}
    }
}
