//! The conventional page-mapping FTL: the paper's comparison baseline.

use std::collections::HashSet;

use vflash_nand::{BlockAddr, NandDevice, NandError, Nanos, PageAddr};

use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::gc::{GcOutcome, GreedyVictimPolicy, VictimPolicy};
use crate::io::{Completion, IoCommand, IoRequest};
use crate::mapping::MappingTable;
use crate::metrics::FtlMetrics;
use crate::traits::FlashTranslationLayer;
use crate::types::Lpn;

/// A conventional page-mapping FTL with greedy garbage collection.
///
/// This is the baseline the paper compares against: it performs out-of-place updates
/// into a single active block and reclaims space with greedy victim selection, but it
/// **assumes every page has the same access speed** — data lands on whatever page the
/// write pointer happens to reach, so fast bottom-layer pages are wasted on cold data
/// as often as they serve hot data.
///
/// # Example
///
/// ```
/// use vflash_ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig, Lpn};
/// use vflash_nand::{NandConfig, NandDevice};
///
/// # fn main() -> Result<(), vflash_ftl::FtlError> {
/// let device = NandDevice::new(NandConfig::small());
/// let mut ftl = ConventionalFtl::new(device, FtlConfig::default())?;
/// for lpn in 0..100 {
///     ftl.write(Lpn(lpn), 4096)?;
/// }
/// assert_eq!(ftl.metrics().host_writes, 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConventionalFtl {
    device: NandDevice,
    config: FtlConfig,
    mapping: MappingTable,
    /// Host write lanes: one active block per lane, filled round-robin. Length
    /// is the write-stripe width (1 unless [`FlashTranslationLayer::set_write_stripe`]
    /// raised it), so the unstriped layout is the single-active-block baseline.
    active: Vec<Option<BlockAddr>>,
    /// Next host lane to program (always 0 when unstriped).
    lane: usize,
    gc_active: Option<BlockAddr>,
    victim_policy: Box<dyn VictimPolicy>,
    metrics: FtlMetrics,
    logical_pages: u64,
    read_only: bool,
    /// LPNs whose data was lost to an uncorrectable relocation read. A host read
    /// of a lost LPN completes instantly with the `uncorrectable` flag (the
    /// device no longer holds the data); a successful rewrite clears the entry.
    lost: HashSet<Lpn>,
}

impl ConventionalFtl {
    /// Builds the FTL on top of `device`.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::InvalidConfig`] if the configuration is inconsistent or
    /// leaves no usable logical capacity.
    pub fn new(device: NandDevice, config: FtlConfig) -> Result<Self, FtlError> {
        config.validate()?;
        let nand = device.config();
        let logical_pages = config.logical_pages(nand.total_pages());
        if logical_pages == 0 {
            return Err(FtlError::InvalidConfig {
                reason: "over-provisioning leaves zero logical pages".to_string(),
            });
        }
        if nand.total_blocks() <= config.gc_target_free_blocks + 1 {
            return Err(FtlError::InvalidConfig {
                reason: format!(
                    "device has only {} blocks; gc target of {} leaves no room for data",
                    nand.total_blocks(),
                    config.gc_target_free_blocks
                ),
            });
        }
        let mapping = MappingTable::new(
            logical_pages,
            nand.chips(),
            nand.blocks_per_chip(),
            nand.pages_per_block(),
        );
        Ok(ConventionalFtl {
            device,
            config,
            mapping,
            active: vec![None],
            lane: 0,
            gc_active: None,
            victim_policy: Box::new(GreedyVictimPolicy::new()),
            metrics: FtlMetrics::new(),
            logical_pages,
            read_only: false,
            lost: HashSet::new(),
        })
    }

    /// The FTL configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Replaces the garbage-collection victim policy (greedy by default). Used by
    /// the Figure 18 policy ablation to compare greedy, wear-aware and
    /// cost-benefit selection on identical workloads.
    pub fn set_victim_policy(&mut self, policy: Box<dyn VictimPolicy>) {
        self.victim_policy = policy;
    }

    /// The mapping table (for inspection in tests and tools).
    pub fn mapping(&self) -> &MappingTable {
        &self.mapping
    }

    /// Number of free blocks currently available for allocation. O(chips): the
    /// device tracks the count, no block scan happens.
    pub fn free_blocks(&self) -> usize {
        self.device.available_blocks()
    }

    fn check_range(&self, lpn: Lpn) -> Result<(), FtlError> {
        if lpn.0 >= self.logical_pages {
            Err(FtlError::LpnOutOfRange { lpn, logical_pages: self.logical_pages })
        } else {
            Ok(())
        }
    }

    fn excluded_blocks(&self) -> Vec<BlockAddr> {
        let mut excluded = Vec::with_capacity(self.active.len() + 1);
        excluded.extend(self.active.iter().flatten().copied());
        if let Some(block) = self.gc_active {
            excluded.push(block);
        }
        excluded
    }

    /// Returns a block with at least one free page for the given stream, allocating a
    /// fresh block from the device free-list when the current one is full.
    fn writable_block(
        device: &mut NandDevice,
        slot: &mut Option<BlockAddr>,
    ) -> Result<BlockAddr, FtlError> {
        if let Some(block) = *slot {
            if device.block(block)?.next_page().is_some() {
                return Ok(block);
            }
        }
        let fresh = device.allocate_block().ok_or(FtlError::OutOfSpace)?;
        *slot = Some(fresh);
        Ok(fresh)
    }

    /// Converts an allocation failure into the right terminal error: when bad-block
    /// growth has eaten the spare capacity, the FTL transitions (stickily) to
    /// read-only mode instead of reporting a capacity bug.
    fn out_of_space(&mut self) -> FtlError {
        if self.device.bad_block_count() > 0 {
            self.read_only = true;
            self.metrics.record_read_only(self.device.makespan());
            FtlError::ReadOnly
        } else {
            FtlError::OutOfSpace
        }
    }

    /// Programs the next page of the write stream tracked by `gc_stream`'s slot,
    /// re-driving into a fresh block when the device injects a program failure.
    /// A failed program retires its block; the surviving valid pages are rescued
    /// into replacement blocks before the program is retried, and the rescue
    /// time is charged to the returned latency.
    fn program_next_with_redrive(
        &mut self,
        gc_stream: bool,
    ) -> Result<(PageAddr, Nanos), FtlError> {
        let mut time = Nanos::ZERO;
        let lane = self.lane;
        loop {
            let allocated = {
                let slot = if gc_stream { &mut self.gc_active } else { &mut self.active[lane] };
                Self::writable_block(&mut self.device, slot)
            };
            let block = match allocated {
                Ok(block) => block,
                Err(FtlError::OutOfSpace) => return Err(self.out_of_space()),
                Err(err) => return Err(err),
            };
            match self.device.program_next(block) {
                Ok((page, program)) => {
                    time += program;
                    if !gc_stream {
                        self.lane = (lane + 1) % self.active.len();
                    }
                    return Ok((block.page(page), time));
                }
                Err(NandError::ProgramFailed { .. }) => {
                    // The device retired `block`. Drop it from the stream, move
                    // its surviving valid pages to safety and try again.
                    self.metrics.record_bad_block();
                    if gc_stream {
                        self.gc_active = None;
                    } else {
                        self.active[lane] = None;
                    }
                    time += self.rescue_block(block, gc_stream)?;
                    self.metrics.record_remap();
                }
                Err(err) => return Err(err.into()),
            }
        }
    }

    /// Relocates every surviving valid page out of `bad` (a freshly retired block)
    /// into the stream's replacement blocks. Pages whose relocation read is
    /// uncorrectable are dropped from the mapping and remembered as lost — the
    /// host's next read of the LPN completes with the `uncorrectable` flag.
    /// Returns the time charged.
    fn rescue_block(&mut self, bad: BlockAddr, gc_stream: bool) -> Result<Nanos, FtlError> {
        let mut time = Nanos::ZERO;
        let residents: Vec<_> = self.mapping.lpns_in_block(bad).collect();
        for (page, lpn) in residents {
            let source = bad.page(page);
            match self.relocation_read(source, lpn)? {
                Some(read) => time += read,
                None => {
                    time += self.device.last_read_faults().total_time;
                    continue;
                }
            }
            let (destination, program) = self.program_next_with_redrive(gc_stream)?;
            time += program;
            self.metrics.record_rescue(1);
            self.device.invalidate(source)?;
            self.mapping.map(lpn, destination);
        }
        Ok(time)
    }

    /// Reads `source` on behalf of a relocation (GC or bad-block rescue). Returns
    /// `Ok(Some(latency))` on success; on an uncorrectable read the data is lost,
    /// so the LPN is unmapped and remembered as lost, the page invalidated and
    /// `Ok(None)` returned (the caller charges
    /// [`NandDevice::last_read_faults`]'s total time).
    fn relocation_read(&mut self, source: PageAddr, lpn: Lpn) -> Result<Option<Nanos>, FtlError> {
        let outcome = self.device.read(source);
        let faults = self.device.last_read_faults();
        self.metrics.record_read_retries(faults.retries, faults.retry_time);
        match outcome {
            Ok(latency) => Ok(Some(latency)),
            Err(NandError::UncorrectableRead { .. }) => {
                self.metrics.record_uncorrectable_read();
                self.mapping.unmap(lpn);
                self.lost.insert(lpn);
                self.device.invalidate(source)?;
                Ok(None)
            }
            Err(err) => Err(err.into()),
        }
    }

    /// Reclaims blocks until the free pool reaches the configured target, charging the
    /// work to the returned outcome.
    fn collect_garbage(&mut self) -> Result<GcOutcome, FtlError> {
        let mut outcome = GcOutcome::default();
        while self.device.available_blocks() < self.config.gc_target_free_blocks {
            let exclude = self.excluded_blocks();
            let Some(victim) = self.victim_policy.select_victim(&self.device, &exclude) else {
                break;
            };
            outcome.merge(self.reclaim_block(victim)?);
        }
        Ok(outcome)
    }

    /// Relocates every valid page out of `victim`, erases it and returns it to the
    /// free pool. An injected erase failure retires the victim instead: its valid
    /// data is already safe, so GC simply moves on without counting an erase.
    fn reclaim_block(&mut self, victim: BlockAddr) -> Result<GcOutcome, FtlError> {
        let mut outcome = GcOutcome::default();
        let residents: Vec<_> = self.mapping.lpns_in_block(victim).collect();
        for (page, lpn) in residents {
            let source = victim.page(page);
            match self.relocation_read(source, lpn)? {
                Some(read) => outcome.time += read,
                None => {
                    outcome.time += self.device.last_read_faults().total_time;
                    continue;
                }
            }
            let (destination, program) = self.program_next_with_redrive(true)?;
            outcome.time += program;
            self.device.invalidate(source)?;
            self.mapping.map(lpn, destination);
            outcome.copied_pages += 1;
        }
        // The erase returns the victim to the device's free pool; no separate
        // release step exists any more. Failed erases are instantaneous (the
        // device charges no time) and retire the block.
        match self.device.erase(victim) {
            Ok(erase) => {
                outcome.time += erase;
                outcome.erased_blocks += 1;
            }
            Err(NandError::EraseFailed { .. }) => self.metrics.record_bad_block(),
            Err(err) => return Err(err.into()),
        }
        Ok(outcome)
    }
}

impl FlashTranslationLayer for ConventionalFtl {
    fn name(&self) -> &str {
        "conventional"
    }

    fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    fn submit(&mut self, request: IoRequest) -> Result<Completion, FtlError> {
        let lpn = request.lpn;
        self.check_range(lpn)?;
        // Everything recorded into the op arena from here on is this request's.
        let mark = self.device.op_mark();
        match request.command {
            IoCommand::Read => {
                let Some(addr) = self.mapping.lookup(lpn) else {
                    if self.lost.contains(&lpn) {
                        // The data fell to an uncorrectable relocation read and is
                        // gone from the media: the read completes instantly (no
                        // device work) with the data-lost flag, like a failed
                        // host read after its retry ladder.
                        self.metrics.record_uncorrectable_read();
                        self.metrics.record_host_read(Nanos::ZERO);
                        return Ok(Completion {
                            latency: Nanos::ZERO,
                            ops: self.device.ops_since(mark),
                            gc: GcOutcome::default(),
                            read_retries: 0,
                            uncorrectable: true,
                        });
                    }
                    return Err(FtlError::UnmappedRead { lpn });
                };
                // An uncorrectable read still completes towards the host — the
                // full retry-ladder latency was spent — but the data is lost.
                let (latency, uncorrectable) = match self.device.read(addr) {
                    Ok(latency) => (latency, false),
                    Err(NandError::UncorrectableRead { .. }) => {
                        (self.device.last_read_faults().total_time, true)
                    }
                    Err(err) => return Err(err.into()),
                };
                let faults = self.device.last_read_faults();
                self.metrics.record_read_retries(faults.retries, faults.retry_time);
                if uncorrectable {
                    self.metrics.record_uncorrectable_read();
                }
                self.metrics.record_host_read(latency);
                Ok(Completion {
                    latency,
                    ops: self.device.ops_since(mark),
                    gc: GcOutcome::default(),
                    read_retries: faults.retries,
                    uncorrectable,
                })
            }
            IoCommand::Write { request_bytes: _ } => {
                if self.read_only {
                    return Err(FtlError::ReadOnly);
                }
                let mut latency = Nanos::ZERO;
                let mut gc = GcOutcome::default();

                if self.device.available_blocks() < self.config.gc_trigger_free_blocks {
                    gc = self.collect_garbage()?;
                    latency += gc.time;
                    self.metrics.record_gc(gc.copied_pages, gc.erased_blocks, gc.time);
                }

                let (addr, program) = self.program_next_with_redrive(false)?;
                latency += program;

                if let Some(previous) = self.mapping.map(lpn, addr) {
                    self.device.invalidate(previous)?;
                }
                self.lost.remove(&lpn);
                self.metrics.record_host_write(latency);
                Ok(Completion {
                    latency,
                    ops: self.device.ops_since(mark),
                    gc,
                    read_retries: 0,
                    uncorrectable: false,
                })
            }
        }
    }

    fn note_batch(&mut self, pages: u64) {
        self.metrics.record_batch(pages);
    }

    fn set_write_stripe(&mut self, lanes: usize) {
        let lanes = lanes.max(1);
        // Lanes dropped on a shrink simply stop receiving writes; their
        // partially-filled blocks become ordinary GC candidates.
        self.active.resize(lanes, None);
        self.lane %= lanes;
    }

    fn metrics(&self) -> &FtlMetrics {
        &self.metrics
    }

    fn is_read_only(&self) -> bool {
        self.read_only
    }

    fn device(&self) -> &NandDevice {
        &self.device
    }

    fn device_mut(&mut self) -> &mut NandDevice {
        &mut self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_nand::NandConfig;

    fn small_ftl() -> ConventionalFtl {
        // 1 chip x 16 blocks x 8 pages = 128 physical pages, ~20% OP -> 102 logical
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(16)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .speed_ratio(4.0)
                .build()
                .unwrap(),
        );
        let config = FtlConfig { over_provisioning: 0.2, ..FtlConfig::default() };
        ConventionalFtl::new(device, config).unwrap()
    }

    #[test]
    fn write_stripe_spreads_consecutive_writes_across_chips() {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(4)
                .blocks_per_chip(8)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        );
        let config = FtlConfig { over_provisioning: 0.2, ..FtlConfig::default() };
        let mut ftl = ConventionalFtl::new(device, config).unwrap();
        ftl.set_write_stripe(4);
        for lpn in 0..8 {
            ftl.write(Lpn(lpn), 4096).unwrap();
        }
        let chips: HashSet<usize> = (0..8)
            .map(|lpn| ftl.mapping().lookup(Lpn(lpn)).unwrap().block().chip().0)
            .collect();
        assert_eq!(chips.len(), 4, "8 striped writes must touch all 4 chips");
        // Releasing the stripe funnels writes back into a single active block.
        ftl.set_write_stripe(1);
        ftl.write(Lpn(100), 4096).unwrap();
        ftl.write(Lpn(101), 4096).unwrap();
        let a = ftl.mapping().lookup(Lpn(100)).unwrap();
        let b = ftl.mapping().lookup(Lpn(101)).unwrap();
        assert_eq!(a.block(), b.block(), "unstriped writes share the active block");
        ftl.mapping().check_consistency().unwrap();
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut ftl = small_ftl();
        let write = ftl.write(Lpn(7), 4096).unwrap();
        let read = ftl.read(Lpn(7)).unwrap();
        assert!(write > read);
        assert_eq!(ftl.metrics().host_writes, 1);
        assert_eq!(ftl.metrics().host_reads, 1);
    }

    #[test]
    fn read_of_never_written_lpn_is_an_error() {
        let mut ftl = small_ftl();
        assert!(matches!(ftl.read(Lpn(3)), Err(FtlError::UnmappedRead { .. })));
    }

    #[test]
    fn out_of_range_lpns_are_rejected() {
        let mut ftl = small_ftl();
        let beyond = Lpn(ftl.logical_pages());
        assert!(matches!(ftl.write(beyond, 4096), Err(FtlError::LpnOutOfRange { .. })));
        assert!(matches!(ftl.read(beyond), Err(FtlError::LpnOutOfRange { .. })));
    }

    #[test]
    fn overwrites_invalidate_old_locations() {
        let mut ftl = small_ftl();
        ftl.write(Lpn(1), 4096).unwrap();
        let first = ftl.mapping().lookup(Lpn(1)).unwrap();
        ftl.write(Lpn(1), 4096).unwrap();
        let second = ftl.mapping().lookup(Lpn(1)).unwrap();
        assert_ne!(first, second);
        // The old physical page is now invalid.
        let block = ftl.device().block(first.block()).unwrap();
        assert_eq!(block.invalid_pages(), 1);
        ftl.mapping().check_consistency().unwrap();
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_never_run_out_of_space() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        // Write 10x the logical capacity, uniformly.
        for i in 0..(logical * 10) {
            ftl.write(Lpn(i % logical), 4096).unwrap();
        }
        assert!(ftl.metrics().gc_erased_blocks > 0, "GC never ran");
        assert!(ftl.metrics().host_writes == logical * 10);
        assert!(ftl.free_blocks() >= 1);
        ftl.mapping().check_consistency().unwrap();
        // Every LPN is still readable after heavy GC.
        for i in 0..logical {
            ftl.read(Lpn(i)).unwrap();
        }
    }

    #[test]
    fn gc_preserves_data_integrity_under_skewed_overwrites() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        // Fill once, then hammer a small hot set.
        for i in 0..logical {
            ftl.write(Lpn(i), 4096).unwrap();
        }
        for round in 0..(logical * 8) {
            ftl.write(Lpn(round % 10), 4096).unwrap();
        }
        for i in 0..logical {
            assert!(ftl.read(Lpn(i)).is_ok(), "LPN{i} lost after GC");
        }
        assert_eq!(ftl.mapping().mapped_pages(), logical);
    }

    #[test]
    fn write_amplification_is_reported() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for i in 0..(logical * 6) {
            ftl.write(Lpn(i % logical), 4096).unwrap();
        }
        let waf = ftl.metrics().write_amplification();
        assert!(waf >= 1.0, "WAF below 1: {waf}");
    }

    #[test]
    fn gc_time_is_charged_to_triggering_writes() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for i in 0..(logical * 6) {
            ftl.write(Lpn(i % logical), 4096).unwrap();
        }
        let metrics = ftl.metrics();
        assert!(metrics.gc_time > Nanos::ZERO);
        assert!(metrics.host_write_time > metrics.gc_time);
    }

    #[test]
    fn submit_reports_op_provenance_and_gc_attribution() {
        let mut ftl = small_ftl();
        // Without tracing, completions stay lean.
        let completion = ftl.submit(IoRequest::write(Lpn(0), 4096)).unwrap();
        assert!(completion.ops.is_empty());
        assert_eq!(completion.gc, GcOutcome::default());

        ftl.device_mut().set_op_tracing(true);
        let write = ftl.submit(IoRequest::write(Lpn(1), 4096)).unwrap();
        assert_eq!(write.ops.len(), 1, "a GC-free write is a single program");
        assert_eq!(ftl.device().ops(write.ops)[0].kind, vflash_nand::OpKind::Program);
        assert_eq!(ftl.device().ops(write.ops)[0].latency, write.latency);

        let read = ftl.submit(IoRequest::read(Lpn(1))).unwrap();
        assert_eq!(read.ops.len(), 1);
        assert_eq!(ftl.device().ops(read.ops)[0].kind, vflash_nand::OpKind::Read);
        assert_eq!(ftl.device().ops(read.ops)[0].latency, read.latency);

        // Force garbage collection: the triggering write's completion owns the GC
        // work, and its ops sum to exactly the charged latency. Clearing the
        // arena between requests is the replayer's job; doing it here also keeps
        // each span anchored at zero.
        let logical = ftl.logical_pages();
        let mut gc_seen = false;
        for i in 0..(logical * 6) {
            ftl.device_mut().clear_ops();
            let completion = ftl.submit(IoRequest::write(Lpn(i % logical), 4096)).unwrap();
            let ops_total: Nanos =
                ftl.device().ops(completion.ops).iter().map(|op| op.latency).sum();
            assert_eq!(ops_total, completion.latency);
            if completion.gc.erased_blocks > 0 {
                gc_seen = true;
                assert!(completion.ops.len() > 1, "GC adds reads/programs/erases");
                assert!(completion.gc.time > Nanos::ZERO);
                assert!(completion.latency >= completion.gc.time);
            }
        }
        assert!(gc_seen, "workload never triggered GC");
    }

    #[test]
    fn victim_policy_is_swappable() {
        use crate::gc::CostBenefitVictimPolicy;
        let mut greedy = small_ftl();
        let mut cost_benefit = small_ftl();
        cost_benefit.set_victim_policy(Box::new(CostBenefitVictimPolicy::new()));
        let logical = greedy.logical_pages();
        for ftl in [&mut greedy, &mut cost_benefit] {
            for i in 0..(logical * 8) {
                // Skewed overwrites: a hot tenth plus a cold sweep, so utilisation
                // and age actually differ across blocks.
                let lpn = if i % 2 == 0 { Lpn(i % (logical / 10).max(1)) } else { Lpn(i % logical) };
                ftl.write(lpn, 4096).unwrap();
            }
            assert!(ftl.metrics().gc_erased_blocks > 0);
            ftl.mapping().check_consistency().unwrap();
            for i in 0..logical {
                ftl.read(Lpn(i)).ok();
            }
        }
        // Both policies keep the FTL functional; erase counts may differ.
    }

    fn faulty_ftl(faults: vflash_nand::FaultConfig) -> ConventionalFtl {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(16)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .faults(faults)
                .build()
                .unwrap(),
        );
        let config = FtlConfig { over_provisioning: 0.2, ..FtlConfig::default() };
        ConventionalFtl::new(device, config).unwrap()
    }

    #[test]
    fn uncorrectable_host_reads_complete_with_the_data_lost_flag() {
        // An absurd raw bit-error rate: every read exhausts the retry ladder.
        let mut ftl = faulty_ftl(vflash_nand::FaultConfig {
            rber_scale: 1e12,
            ecc_correctable_bits: 0,
            retry_extra_bits: 1,
            max_read_retries: 2,
            program_fail_base: 0.0,
            erase_fail_base: 0.0,
            ..vflash_nand::FaultConfig::enabled(11)
        });
        ftl.write(Lpn(1), 4096).unwrap();
        let completion = ftl.submit(IoRequest::read(Lpn(1))).unwrap();
        assert!(completion.uncorrectable, "extreme RBER must exhaust the ladder");
        assert_eq!(completion.read_retries, 2);
        assert_eq!(ftl.metrics().uncorrectable_reads, 1);
        assert_eq!(ftl.metrics().retried_reads, 1);
        assert!(ftl.metrics().read_retry_time > Nanos::ZERO);
        // The full ladder latency was charged even though the data is gone.
        assert!(completion.latency > Nanos::ZERO);
    }

    #[test]
    fn reads_of_data_lost_in_relocation_complete_with_the_data_lost_flag() {
        // Every read exhausts the retry ladder, so every GC relocation read
        // loses its page. Lost LPNs must not surface as UnmappedRead — the
        // host read completes instantly with the uncorrectable flag, and a
        // rewrite brings the LPN back to life.
        let mut ftl = faulty_ftl(vflash_nand::FaultConfig {
            rber_scale: 1e12,
            ecc_correctable_bits: 0,
            retry_extra_bits: 1,
            max_read_retries: 2,
            program_fail_base: 0.0,
            erase_fail_base: 0.0,
            ..vflash_nand::FaultConfig::enabled(11)
        });
        let logical = ftl.logical_pages();
        for i in 0..(logical * 3) {
            ftl.write(Lpn(i % logical), 4096).unwrap();
        }
        assert!(ftl.metrics().gc_erased_blocks > 0, "workload never triggered GC");
        let mut lost_seen = false;
        for i in 0..logical {
            let completion = ftl.submit(IoRequest::read(Lpn(i))).unwrap();
            assert!(completion.uncorrectable, "every read on this device fails");
            if completion.latency == Nanos::ZERO {
                // A lost LPN: no device work happened, no retries charged.
                assert_eq!(completion.read_retries, 0);
                lost_seen = true;
            }
        }
        assert!(lost_seen, "an uncorrectable-everything device must lose data in GC");
        // Rewriting a lost LPN revives it: the mapping points at real data again.
        let victim = Lpn(0);
        ftl.write(victim, 4096).unwrap();
        assert!(ftl.mapping().lookup(victim).is_some());
    }

    #[test]
    fn program_failures_remap_writes_until_spares_run_out() {
        let mut ftl = faulty_ftl(vflash_nand::FaultConfig {
            program_fail_base: 0.02,
            erase_fail_base: 0.0,
            rber_scale: 0.0,
            ..vflash_nand::FaultConfig::enabled(7)
        });
        let logical = ftl.logical_pages();
        let mut writes = 0u64;
        let read_only = loop {
            match ftl.write(Lpn(writes % logical), 4096) {
                Ok(_) => writes += 1,
                Err(FtlError::ReadOnly) => break true,
                Err(err) => panic!("unexpected error before end of life: {err}"),
            }
            assert!(writes < 1_000_000, "device never reached end of life");
        };
        assert!(read_only);
        assert!(ftl.is_read_only());
        assert!(writes > 0, "no writes succeeded before end of life");
        let metrics = *ftl.metrics();
        assert!(metrics.bad_blocks_grown > 0);
        assert!(metrics.remapped_writes > 0);
        assert!(metrics.time_to_read_only > Nanos::ZERO);
        assert_eq!(metrics.bad_blocks_grown, ftl.device().bad_block_count() as u64);
        // Read-only mode is sticky and instantaneous...
        assert!(matches!(ftl.write(Lpn(0), 4096), Err(FtlError::ReadOnly)));
        // ...but surviving data is still readable.
        let readable = (0..logical).filter(|&i| ftl.read(Lpn(i)).is_ok()).count();
        assert!(readable > 0, "read-only mode must keep serving reads");
        ftl.mapping().check_consistency().unwrap();
    }

    #[test]
    fn fault_paths_preserve_op_latency_accounting() {
        // Retries on every few reads plus occasional program failures: the
        // sum-of-ops identity must survive rescue relocations and retry latency.
        let mut ftl = faulty_ftl(vflash_nand::FaultConfig {
            rber_scale: 30.0,
            program_fail_base: 0.005,
            erase_fail_base: 0.002,
            ..vflash_nand::FaultConfig::enabled(42)
        });
        ftl.device_mut().set_op_tracing(true);
        let logical = ftl.logical_pages();
        for i in 0..(logical * 6) {
            ftl.device_mut().clear_ops();
            let write = match ftl.submit(IoRequest::write(Lpn(i % logical), 4096)) {
                Ok(completion) => completion,
                Err(FtlError::ReadOnly) => break,
                Err(err) => panic!("unexpected error: {err}"),
            };
            let ops_total: Nanos =
                ftl.device().ops(write.ops).iter().map(|op| op.latency).sum();
            assert_eq!(ops_total, write.latency, "write ops must sum to the charge");

            ftl.device_mut().clear_ops();
            if let Ok(read) = ftl.submit(IoRequest::read(Lpn(i % logical))) {
                let ops_total: Nanos =
                    ftl.device().ops(read.ops).iter().map(|op| op.latency).sum();
                assert_eq!(ops_total, read.latency, "read ops must sum to the charge");
            }
        }
        assert!(ftl.metrics().retried_reads > 0, "fault model never fired");
    }

    #[test]
    fn too_small_devices_are_rejected() {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(3)
                .pages_per_block(4)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        );
        assert!(matches!(
            ConventionalFtl::new(device, FtlConfig::default()),
            Err(FtlError::InvalidConfig { .. })
        ));
    }
}
