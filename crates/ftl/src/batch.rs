//! The completion of a batched submission.
//!
//! A batch models a host submitting several page requests at once (an SQ-ring
//! doorbell, a queue-depth window): every request is eligible to issue at the
//! batch's start instant, and the device overlaps their operations across
//! chips. The FTL still serves the requests *in submission order* — mapping
//! updates, GC triggers and fault draws are bit-identical to submitting each
//! request alone — only the time accounting changes: each request's device
//! operations are replayed through per-chip ready clocks
//! ([`vflash_nand::ChipClocks`]), and the batch completes at the
//! [makespan](BatchCompletion::makespan), not the serial sum.

use vflash_nand::Nanos;

use crate::io::Completion;

/// The completion of one batched submission: the per-request scalar
/// completions (latency, GC/fault attribution, op spans — exactly what scalar
/// [`submit`](crate::FlashTranslationLayer::submit) would have returned) plus
/// the batch-level schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchCompletion {
    /// Per-request completions, in submission order. Each carries the
    /// request's own serial latency and attribution, unchanged by batching.
    pub completions: Vec<Completion>,
    /// When each request's last device op ends under chip-parallel
    /// scheduling, measured from the batch start. Same order as
    /// `completions`.
    pub finish_times: Vec<Nanos>,
    /// When the whole batch completes: the latest per-chip busy-until
    /// instant. Bounded below by the busiest single chip's work and above by
    /// [`BatchCompletion::serial_time`].
    pub makespan: Nanos,
}

impl BatchCompletion {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// The serial sum of the per-request latencies — what the scalar path
    /// would have charged. Never less than [`BatchCompletion::makespan`].
    pub fn serial_time(&self) -> Nanos {
        self.completions.iter().map(|completion| completion.latency).sum()
    }

    /// Whether any request in the batch lost its data to an uncorrectable
    /// read.
    pub fn any_uncorrectable(&self) -> bool {
        self.completions.iter().any(|completion| completion.uncorrectable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_is_zeroed() {
        let batch = BatchCompletion::default();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.serial_time(), Nanos::ZERO);
        assert_eq!(batch.makespan, Nanos::ZERO);
        assert!(!batch.any_uncorrectable());
    }

    #[test]
    fn serial_time_sums_per_request_latencies() {
        let mut batch = BatchCompletion::default();
        batch.completions.push(Completion::new(Nanos(30)));
        batch.completions.push(Completion::new(Nanos(12)));
        batch.finish_times = vec![Nanos(30), Nanos(12)];
        batch.makespan = Nanos(30);
        assert_eq!(batch.serial_time(), Nanos(42));
        assert_eq!(batch.len(), 2);

        let mut lost = Completion::new(Nanos(5));
        lost.uncorrectable = true;
        batch.completions.push(lost);
        assert!(batch.any_uncorrectable());
    }
}
