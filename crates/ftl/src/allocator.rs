//! Free-block pool management.

use std::collections::VecDeque;

use vflash_nand::{BlockAddr, NandDevice};

/// Tracks which physical blocks are free and hands them out to write streams.
///
/// The allocator is deliberately policy-free: it neither knows about hotness nor about
/// virtual blocks. Higher layers decide *which stream* asks for a block; the
/// allocator only guarantees each free block is handed out once until it is
/// released again after an erase.
///
/// Since the device grew its own per-chip free-block pools
/// ([`NandDevice::allocate_block`]), the FTLs in this workspace allocate straight
/// from the device — which also rotates allocations across chips so programs can
/// overlap in time. This standalone pool remains for tools and tests that manage an
/// explicit block subset (e.g. reserving blocks for other purposes) and for FTLs
/// built outside this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAllocator {
    free: VecDeque<BlockAddr>,
    total_blocks: usize,
}

impl BlockAllocator {
    /// Builds an allocator whose free pool contains every block of `device`.
    ///
    /// Blocks are handed out in address order, which keeps allocation deterministic
    /// and reproducible across runs.
    pub fn for_device(device: &NandDevice) -> Self {
        let free: VecDeque<BlockAddr> = device.block_addrs().collect();
        let total_blocks = free.len();
        BlockAllocator { free, total_blocks }
    }

    /// Builds an allocator over an explicit block list (used in tests and by FTLs
    /// that reserve some blocks for other purposes).
    pub fn from_blocks<I: IntoIterator<Item = BlockAddr>>(blocks: I) -> Self {
        let free: VecDeque<BlockAddr> = blocks.into_iter().collect();
        let total_blocks = free.len();
        BlockAllocator { free, total_blocks }
    }

    /// Number of blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Number of blocks this allocator manages in total.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Takes a free block, or `None` if the pool is empty.
    pub fn allocate(&mut self) -> Option<BlockAddr> {
        self.free.pop_front()
    }

    /// Returns an erased block to the free pool.
    ///
    /// The caller must only release blocks that were previously allocated from this
    /// pool and have been erased; releasing twice would let two write streams share a
    /// block, so it is checked in debug builds.
    pub fn release(&mut self, block: BlockAddr) {
        debug_assert!(
            !self.free.contains(&block),
            "block {block} released twice"
        );
        self.free.push_back(block);
    }

    /// Whether the pool still tracks `block` as free.
    pub fn is_free(&self, block: BlockAddr) -> bool {
        self.free.contains(&block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_nand::{ChipId, NandConfig};

    #[test]
    fn pool_covers_whole_device() {
        let device = NandDevice::new(NandConfig::small());
        let allocator = BlockAllocator::for_device(&device);
        assert_eq!(allocator.free_blocks(), device.config().total_blocks());
        assert_eq!(allocator.total_blocks(), device.config().total_blocks());
    }

    #[test]
    fn allocate_release_cycle() {
        let blocks: Vec<_> = (0..4).map(|i| BlockAddr::new(ChipId(0), i)).collect();
        let mut allocator = BlockAllocator::from_blocks(blocks.clone());
        let first = allocator.allocate().unwrap();
        assert_eq!(first, blocks[0]);
        assert_eq!(allocator.free_blocks(), 3);
        assert!(!allocator.is_free(first));
        allocator.release(first);
        assert_eq!(allocator.free_blocks(), 4);
        assert!(allocator.is_free(first));
    }

    #[test]
    fn exhausting_the_pool_returns_none() {
        let mut allocator =
            BlockAllocator::from_blocks([BlockAddr::new(ChipId(0), 0)]);
        assert!(allocator.allocate().is_some());
        assert!(allocator.allocate().is_none());
    }

    #[test]
    fn allocation_order_is_deterministic() {
        let device = NandDevice::new(NandConfig::small());
        let mut a = BlockAllocator::for_device(&device);
        let mut b = BlockAllocator::for_device(&device);
        for _ in 0..10 {
            assert_eq!(a.allocate(), b.allocate());
        }
    }
}
