//! Two-level LRU hot/cold identification.

use std::collections::VecDeque;

use crate::hotcold::{HotColdClassifier, Temperature};
use crate::types::Lpn;

/// The two-level LRU scheme of Chang & Kuo (RTAS 2002).
///
/// Two LRU lists are kept: a *candidate* list of recently written pages and a *hot*
/// list. A page first enters the candidate list (classified cold); if it is written
/// again while still on the candidate list it is promoted to the hot list and
/// classified hot from then on, until it ages out of the hot list.
///
/// # Example
///
/// ```
/// use vflash_ftl::hotcold::{HotColdClassifier, Temperature, TwoLevelLru};
/// use vflash_ftl::Lpn;
///
/// let mut lru = TwoLevelLru::new(4, 4);
/// assert_eq!(lru.classify_write(Lpn(1), 4096), Temperature::Cold); // first sighting
/// assert_eq!(lru.classify_write(Lpn(1), 4096), Temperature::Hot);  // re-written soon
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoLevelLru {
    hot: VecDeque<Lpn>,
    candidates: VecDeque<Lpn>,
    hot_capacity: usize,
    candidate_capacity: usize,
}

impl TwoLevelLru {
    /// Creates the classifier with the given list capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(hot_capacity: usize, candidate_capacity: usize) -> Self {
        assert!(hot_capacity > 0, "hot list capacity must be positive");
        assert!(candidate_capacity > 0, "candidate list capacity must be positive");
        TwoLevelLru {
            hot: VecDeque::with_capacity(hot_capacity),
            candidates: VecDeque::with_capacity(candidate_capacity),
            hot_capacity,
            candidate_capacity,
        }
    }

    /// Number of pages currently tracked as hot.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// Number of pages currently on the candidate list.
    pub fn candidate_len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether `lpn` is currently considered hot.
    pub fn is_hot(&self, lpn: Lpn) -> bool {
        self.hot.contains(&lpn)
    }

    fn touch_front(list: &mut VecDeque<Lpn>, lpn: Lpn) {
        if let Some(position) = list.iter().position(|&candidate| candidate == lpn) {
            list.remove(position);
        }
        list.push_front(lpn);
    }
}

impl HotColdClassifier for TwoLevelLru {
    fn name(&self) -> &str {
        "two-level-lru"
    }

    fn classify_write(&mut self, lpn: Lpn, _request_bytes: u32) -> Temperature {
        if self.hot.contains(&lpn) {
            Self::touch_front(&mut self.hot, lpn);
            return Temperature::Hot;
        }
        if let Some(position) = self.candidates.iter().position(|&candidate| candidate == lpn) {
            // Second write while still a candidate: promote to the hot list.
            self.candidates.remove(position);
            self.hot.push_front(lpn);
            if self.hot.len() > self.hot_capacity {
                // Demote the least recently used hot entry back to the candidates.
                if let Some(evicted) = self.hot.pop_back() {
                    Self::touch_front(&mut self.candidates, evicted);
                }
            }
            if self.candidates.len() > self.candidate_capacity {
                self.candidates.pop_back();
            }
            return Temperature::Hot;
        }
        // First sighting: enter the candidate list, classified cold.
        self.candidates.push_front(lpn);
        if self.candidates.len() > self.candidate_capacity {
            self.candidates.pop_back();
        }
        Temperature::Cold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_write_is_cold_second_is_hot() {
        let mut lru = TwoLevelLru::new(8, 8);
        assert_eq!(lru.classify_write(Lpn(5), 4096), Temperature::Cold);
        assert_eq!(lru.classify_write(Lpn(5), 4096), Temperature::Hot);
        assert!(lru.is_hot(Lpn(5)));
        assert_eq!(lru.name(), "two-level-lru");
    }

    #[test]
    fn candidate_list_evicts_least_recent() {
        let mut lru = TwoLevelLru::new(2, 2);
        lru.classify_write(Lpn(1), 4096);
        lru.classify_write(Lpn(2), 4096);
        lru.classify_write(Lpn(3), 4096); // evicts LPN1 from candidates
        assert_eq!(lru.candidate_len(), 2);
        // LPN1 lost its candidacy, so the next write is cold again.
        assert_eq!(lru.classify_write(Lpn(1), 4096), Temperature::Cold);
    }

    #[test]
    fn hot_list_overflow_demotes_to_candidates() {
        let mut lru = TwoLevelLru::new(2, 4);
        for lpn in [10, 11, 12] {
            lru.classify_write(Lpn(lpn), 4096);
            lru.classify_write(Lpn(lpn), 4096); // promote each
        }
        assert_eq!(lru.hot_len(), 2);
        // LPN10 was the least recently used hot entry and got demoted.
        assert!(!lru.is_hot(Lpn(10)));
        assert!(lru.is_hot(Lpn(11)));
        assert!(lru.is_hot(Lpn(12)));
        // A demoted page is still a candidate, so one write re-promotes it.
        assert_eq!(lru.classify_write(Lpn(10), 4096), Temperature::Hot);
    }

    #[test]
    fn repeated_hot_writes_keep_entry_hot() {
        let mut lru = TwoLevelLru::new(2, 2);
        lru.classify_write(Lpn(1), 4096);
        lru.classify_write(Lpn(1), 4096);
        for _ in 0..10 {
            assert_eq!(lru.classify_write(Lpn(1), 4096), Temperature::Hot);
        }
        assert_eq!(lru.hot_len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TwoLevelLru::new(0, 4);
    }

    /// Audit regression: with both capacities at the minimum of 1, a promotion into
    /// a full hot list must demote the old occupant into the (also size-1) candidate
    /// list without either list exceeding its capacity or the demoted entry
    /// vanishing entirely.
    #[test]
    fn minimum_capacities_promote_and_demote_without_overflow() {
        let mut lru = TwoLevelLru::new(1, 1);
        lru.classify_write(Lpn(1), 4096);
        assert_eq!(lru.classify_write(Lpn(1), 4096), Temperature::Hot);
        // Promoting LPN2 displaces LPN1 from the hot list into the candidate slot.
        lru.classify_write(Lpn(2), 4096);
        assert_eq!(lru.classify_write(Lpn(2), 4096), Temperature::Hot);
        assert_eq!(lru.hot_len(), 1);
        assert_eq!(lru.candidate_len(), 1);
        assert!(lru.is_hot(Lpn(2)));
        assert!(!lru.is_hot(Lpn(1)));
        // The demoted page kept its candidacy, so one write re-promotes it.
        assert_eq!(lru.classify_write(Lpn(1), 4096), Temperature::Hot);
    }
}
