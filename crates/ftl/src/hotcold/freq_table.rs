//! Table-based access-frequency hot/cold identification.

use crate::fx::FxHashMap;
use crate::hotcold::{HotColdClassifier, Temperature};
use crate::types::Lpn;

/// A per-LPN write counter table with periodic exponential aging.
///
/// Pages whose write count reaches the threshold are classified hot. Every
/// `aging_period` observed writes, all counters are halved so that pages which stop
/// being written eventually cool down (following the aging idea of the table-based
/// history schemes, e.g. Hsieh et al., SAC 2005).
///
/// # Example
///
/// ```
/// use vflash_ftl::hotcold::{FreqTable, HotColdClassifier, Temperature};
/// use vflash_ftl::Lpn;
///
/// let mut table = FreqTable::new(3, 1_000);
/// assert_eq!(table.classify_write(Lpn(9), 4096), Temperature::Cold);
/// assert_eq!(table.classify_write(Lpn(9), 4096), Temperature::Cold);
/// assert_eq!(table.classify_write(Lpn(9), 4096), Temperature::Hot);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqTable {
    /// Per-LPN write counts. The deterministic [`fx`](crate::fx) hasher keeps
    /// the per-write probe cheap; aging mutates every entry independently, so
    /// iteration order never shows through.
    counts: FxHashMap<Lpn, u32>,
    threshold: u32,
    aging_period: u64,
    writes_since_aging: u64,
}

impl FreqTable {
    /// Creates the table.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or `aging_period` is zero.
    pub fn new(threshold: u32, aging_period: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        assert!(aging_period > 0, "aging period must be positive");
        FreqTable { counts: FxHashMap::default(), threshold, aging_period, writes_since_aging: 0 }
    }

    /// The current write count of `lpn` (zero if never seen).
    pub fn count(&self, lpn: Lpn) -> u32 {
        self.counts.get(&lpn).copied().unwrap_or(0)
    }

    /// Number of LPNs currently tracked.
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }

    fn age(&mut self) {
        self.counts.retain(|_, count| {
            *count /= 2;
            *count > 0
        });
    }
}

impl HotColdClassifier for FreqTable {
    fn name(&self) -> &str {
        "freq-table"
    }

    fn classify_write(&mut self, lpn: Lpn, _request_bytes: u32) -> Temperature {
        self.writes_since_aging += 1;
        if self.writes_since_aging >= self.aging_period {
            self.writes_since_aging = 0;
            self.age();
        }
        let count = self.counts.entry(lpn).or_insert(0);
        *count = count.saturating_add(1);
        if *count >= self.threshold {
            Temperature::Hot
        } else {
            Temperature::Cold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_hot_after_threshold_writes() {
        let mut table = FreqTable::new(2, 1_000);
        assert_eq!(table.classify_write(Lpn(1), 4096), Temperature::Cold);
        assert_eq!(table.classify_write(Lpn(1), 4096), Temperature::Hot);
        assert_eq!(table.count(Lpn(1)), 2);
        assert_eq!(table.name(), "freq-table");
    }

    #[test]
    fn independent_lpns_do_not_interfere() {
        let mut table = FreqTable::new(2, 1_000);
        table.classify_write(Lpn(1), 4096);
        assert_eq!(table.classify_write(Lpn(2), 4096), Temperature::Cold);
        assert_eq!(table.tracked(), 2);
    }

    #[test]
    fn aging_halves_counts_and_drops_zeroes() {
        let mut table = FreqTable::new(4, 4);
        // Three writes to LPN1, then a fourth write (to LPN2) triggers aging first.
        for _ in 0..3 {
            table.classify_write(Lpn(1), 4096);
        }
        table.classify_write(Lpn(2), 4096);
        // LPN1 count was halved from 3 to 1, LPN2 was inserted after the aging pass.
        assert_eq!(table.count(Lpn(1)), 1);
        assert_eq!(table.count(Lpn(2)), 1);
        // Entries that decay to zero are dropped from the table.
        for _ in 0..4 {
            table.classify_write(Lpn(3), 4096);
        }
        for _ in 0..8 {
            table.classify_write(Lpn(4), 4096);
        }
        assert_eq!(table.count(Lpn(2)), 0);
    }

    #[test]
    fn cooled_down_pages_return_to_cold() {
        let mut table = FreqTable::new(3, 2);
        for _ in 0..3 {
            table.classify_write(Lpn(7), 4096);
        }
        // Plenty of unrelated traffic ages LPN7 back below the threshold.
        for other in 100..120 {
            table.classify_write(Lpn(other), 4096);
        }
        assert_eq!(table.classify_write(Lpn(7), 4096), Temperature::Cold);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = FreqTable::new(0, 10);
    }

    /// Audit regression: the degenerate aging period of 1 halves the table before
    /// *every* increment, so a count is rebuilt from 0 each write and sits at 1 in
    /// steady state — classification must stay Cold without any underflow, stale
    /// Hot verdict, or unbounded table growth.
    #[test]
    fn aging_every_write_pins_counts_without_underflow() {
        let mut table = FreqTable::new(2, 1);
        assert_eq!(table.classify_write(Lpn(3), 4096), Temperature::Cold); // count 1
        assert_eq!(table.classify_write(Lpn(3), 4096), Temperature::Cold); // 1/2=0, +1
        for _ in 0..10 {
            assert_eq!(table.classify_write(Lpn(3), 4096), Temperature::Cold);
            assert_eq!(table.count(Lpn(3)), 1);
        }
        assert_eq!(table.tracked(), 1);
    }
}
