//! Classical hot/cold data identification mechanisms.
//!
//! The PPB strategy deliberately does **not** invent a new first-stage classifier;
//! it reuses "the decades worth of work on data hotness identification" (paper §3.1)
//! and only refines the result into four levels afterwards. This module provides the
//! classifiers referenced by the paper:
//!
//! * [`SizeCheck`] — request-size based prediction (Chang, ASP-DAC 2008); the paper's
//!   case study and the default first stage,
//! * [`TwoLevelLru`] — the two-level LRU scheme (Chang & Kuo, RTAS 2002),
//! * [`FreqTable`] — table-based access-frequency history (Hsieh et al., SAC 2005),
//! * [`MultiHash`] — multi-hash-function counting sketch, a compact approximation of
//!   the frequency table.
//!
//! All of them implement [`HotColdClassifier`], so any of them can be plugged into the
//! conventional FTL or the PPB strategy.

mod freq_table;
mod multi_hash;
mod size_check;
mod two_level_lru;

pub use freq_table::FreqTable;
pub use multi_hash::MultiHash;
pub use size_check::SizeCheck;
pub use two_level_lru::TwoLevelLru;

use std::fmt;

use crate::types::Lpn;

/// First-stage, two-level data temperature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Temperature {
    /// Frequently updated data.
    Hot,
    /// Rarely updated data.
    Cold,
}

impl Temperature {
    /// Whether this is [`Temperature::Hot`].
    pub const fn is_hot(self) -> bool {
        matches!(self, Temperature::Hot)
    }
}

impl fmt::Display for Temperature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Temperature::Hot => "hot",
            Temperature::Cold => "cold",
        })
    }
}

/// A first-stage hot/cold classifier consulted on every host write.
///
/// Implementations may also observe host reads (e.g. to age their state), but the
/// classification decision itself is made at write time because that is when the FTL
/// must choose a destination page.
pub trait HotColdClassifier {
    /// A short name for reports (e.g. `"size-check"`).
    fn name(&self) -> &str;

    /// Classifies the write of `lpn` that belongs to a host request of
    /// `request_bytes` bytes.
    fn classify_write(&mut self, lpn: Lpn, request_bytes: u32) -> Temperature;

    /// Observes a host read of `lpn`. The default implementation ignores reads.
    fn record_read(&mut self, lpn: Lpn) {
        let _ = lpn;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_predicates_and_display() {
        assert!(Temperature::Hot.is_hot());
        assert!(!Temperature::Cold.is_hot());
        assert_eq!(Temperature::Hot.to_string(), "hot");
        assert_eq!(Temperature::Cold.to_string(), "cold");
    }

    #[test]
    fn classifier_trait_is_object_safe() {
        fn _takes(_: &mut dyn HotColdClassifier) {}
    }
}
