//! Request-size based hot/cold prediction.

use crate::hotcold::{HotColdClassifier, Temperature};
use crate::types::Lpn;

/// Classifies writes by the size of the host request they belong to.
///
/// The heuristic (Chang, ASP-DAC 2008) observes that small requests — metadata,
/// database pages, log appends — are updated far more often than bulk transfers, so
/// any write whose originating request is smaller than the threshold is treated as
/// hot. The paper uses this "size check" as the case-study first stage for the PPB
/// strategy, with the flash page size as the threshold.
///
/// # Example
///
/// ```
/// use vflash_ftl::hotcold::{HotColdClassifier, SizeCheck, Temperature};
/// use vflash_ftl::Lpn;
///
/// let mut classifier = SizeCheck::new(16 * 1024);
/// assert_eq!(classifier.classify_write(Lpn(0), 4 * 1024), Temperature::Hot);
/// assert_eq!(classifier.classify_write(Lpn(1), 64 * 1024), Temperature::Cold);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeCheck {
    threshold_bytes: u32,
}

impl SizeCheck {
    /// Creates the classifier with the given threshold (normally the page size).
    ///
    /// # Panics
    ///
    /// Panics if `threshold_bytes` is zero.
    pub fn new(threshold_bytes: u32) -> Self {
        assert!(threshold_bytes > 0, "threshold must be positive");
        SizeCheck { threshold_bytes }
    }

    /// The size threshold in bytes.
    pub fn threshold_bytes(&self) -> u32 {
        self.threshold_bytes
    }
}

impl HotColdClassifier for SizeCheck {
    fn name(&self) -> &str {
        "size-check"
    }

    fn classify_write(&mut self, _lpn: Lpn, request_bytes: u32) -> Temperature {
        if request_bytes < self.threshold_bytes {
            Temperature::Hot
        } else {
            Temperature::Cold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_is_exclusive() {
        let mut c = SizeCheck::new(16 * 1024);
        assert_eq!(c.classify_write(Lpn(0), 16 * 1024 - 1), Temperature::Hot);
        assert_eq!(c.classify_write(Lpn(0), 16 * 1024), Temperature::Cold);
        assert_eq!(c.threshold_bytes(), 16 * 1024);
        assert_eq!(c.name(), "size-check");
    }

    #[test]
    fn classification_ignores_lpn_history() {
        let mut c = SizeCheck::new(8192);
        for lpn in 0..100 {
            assert_eq!(c.classify_write(Lpn(lpn), 4096), Temperature::Hot);
            assert_eq!(c.classify_write(Lpn(lpn), 65536), Temperature::Cold);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = SizeCheck::new(0);
    }

    /// Audit regression: the extreme thresholds behave sanely — a threshold of 1
    /// classifies everything cold (no request is smaller than one byte), and a
    /// `u32::MAX` threshold classifies everything except a `u32::MAX` request hot.
    #[test]
    fn extreme_thresholds() {
        let mut everything_cold = SizeCheck::new(1);
        assert_eq!(everything_cold.classify_write(Lpn(0), 1), Temperature::Cold);
        assert_eq!(everything_cold.classify_write(Lpn(0), u32::MAX), Temperature::Cold);

        let mut everything_hot = SizeCheck::new(u32::MAX);
        assert_eq!(everything_hot.classify_write(Lpn(0), u32::MAX - 1), Temperature::Hot);
        assert_eq!(everything_hot.classify_write(Lpn(0), u32::MAX), Temperature::Cold);
    }
}
