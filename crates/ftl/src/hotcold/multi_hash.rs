//! Multi-hash counting-sketch hot/cold identification.

use crate::hotcold::{HotColdClassifier, Temperature};
use crate::types::Lpn;

/// A counting-Bloom-filter style classifier.
///
/// Each write hashes the LPN with `hashes` independent hash functions into a shared
/// array of saturating 4-bit counters and increments them; a page is hot when the
/// *minimum* of its counters reaches the threshold. Every `decay_period` writes all
/// counters are halved (right-shifted), implementing exponential decay in constant
/// space. This is the standard constant-memory approximation of the per-LPN frequency
/// table used when the table itself would be too large to keep in SRAM.
///
/// # Example
///
/// ```
/// use vflash_ftl::hotcold::{HotColdClassifier, MultiHash, Temperature};
/// use vflash_ftl::Lpn;
///
/// let mut sketch = MultiHash::new(1024, 2, 4, 10_000);
/// assert_eq!(sketch.classify_write(Lpn(3), 4096), Temperature::Cold);
/// for _ in 0..3 {
///     sketch.classify_write(Lpn(3), 4096);
/// }
/// assert_eq!(sketch.classify_write(Lpn(3), 4096), Temperature::Hot);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiHash {
    counters: Vec<u8>,
    hashes: u32,
    threshold: u8,
    decay_period: u64,
    writes_since_decay: u64,
}

const COUNTER_MAX: u8 = 15;

impl MultiHash {
    /// Creates the sketch.
    ///
    /// # Panics
    ///
    /// Panics if `buckets`, `hashes`, `threshold` or `decay_period` is zero, or the
    /// threshold exceeds the 4-bit counter maximum (15).
    pub fn new(buckets: usize, hashes: u32, threshold: u8, decay_period: u64) -> Self {
        assert!(buckets > 0, "buckets must be positive");
        assert!(hashes > 0, "hashes must be positive");
        assert!(threshold > 0, "threshold must be positive");
        assert!(threshold <= COUNTER_MAX, "threshold must fit the 4-bit counters");
        assert!(decay_period > 0, "decay period must be positive");
        MultiHash {
            counters: vec![0; buckets],
            hashes,
            threshold,
            decay_period,
            writes_since_decay: 0,
        }
    }

    fn bucket(&self, lpn: Lpn, hash_index: u32) -> usize {
        // SplitMix64-style mixing with the hash index folded into the key; cheap,
        // deterministic and well-distributed for sequential LPNs.
        let mut x = lpn.0 ^ (u64::from(hash_index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.counters.len() as u64) as usize
    }

    /// The sketch's current estimate of how many (recent) writes `lpn` has received.
    pub fn estimate(&self, lpn: Lpn) -> u8 {
        (0..self.hashes)
            .map(|h| self.counters[self.bucket(lpn, h)])
            .min()
            .unwrap_or(0)
    }

    fn decay(&mut self) {
        for counter in &mut self.counters {
            *counter >>= 1;
        }
    }
}

impl HotColdClassifier for MultiHash {
    fn name(&self) -> &str {
        "multi-hash"
    }

    fn classify_write(&mut self, lpn: Lpn, _request_bytes: u32) -> Temperature {
        self.writes_since_decay += 1;
        if self.writes_since_decay >= self.decay_period {
            self.writes_since_decay = 0;
            self.decay();
        }
        for h in 0..self.hashes {
            let bucket = self.bucket(lpn, h);
            let counter = &mut self.counters[bucket];
            // saturating_add, not `+ 1`: a plain add only avoids u8 overflow while
            // COUNTER_MAX stays below u8::MAX, which is too easy to break silently.
            *counter = counter.saturating_add(1).min(COUNTER_MAX);
        }
        if self.estimate(lpn) >= self.threshold {
            Temperature::Hot
        } else {
            Temperature::Cold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_writes_become_hot() {
        let mut sketch = MultiHash::new(4096, 2, 3, 100_000);
        assert_eq!(sketch.classify_write(Lpn(42), 4096), Temperature::Cold);
        assert_eq!(sketch.classify_write(Lpn(42), 4096), Temperature::Cold);
        assert_eq!(sketch.classify_write(Lpn(42), 4096), Temperature::Hot);
        assert!(sketch.estimate(Lpn(42)) >= 3);
        assert_eq!(sketch.name(), "multi-hash");
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut sketch = MultiHash::new(64, 2, 3, 1_000_000);
        for _ in 0..100 {
            sketch.classify_write(Lpn(7), 4096);
        }
        assert_eq!(sketch.estimate(Lpn(7)), 15);
    }

    #[test]
    fn decay_cools_idle_pages() {
        let mut sketch = MultiHash::new(4096, 2, 4, 8);
        for _ in 0..6 {
            sketch.classify_write(Lpn(1), 4096);
        }
        let before = sketch.estimate(Lpn(1));
        // Unrelated traffic crosses the decay period several times.
        for other in 1_000..1_040 {
            sketch.classify_write(Lpn(other), 4096);
        }
        assert!(sketch.estimate(Lpn(1)) < before);
    }

    #[test]
    fn unrelated_lpns_rarely_alias_with_enough_buckets() {
        let mut sketch = MultiHash::new(1 << 14, 2, 3, 1_000_000);
        for _ in 0..10 {
            sketch.classify_write(Lpn(5), 4096);
        }
        let cold_estimates: Vec<u8> =
            (100..200).map(|lpn| sketch.estimate(Lpn(lpn))).collect();
        let aliased = cold_estimates.iter().filter(|&&estimate| estimate >= 3).count();
        assert!(aliased <= 2, "too many aliased cold pages: {aliased}");
    }

    #[test]
    #[should_panic(expected = "threshold must fit")]
    fn threshold_above_counter_max_rejected() {
        let _ = MultiHash::new(16, 2, 16, 100);
    }

    /// Audit regression: a threshold exactly at the counter maximum must still be
    /// reachable — saturation keeps counters at 15, and `estimate >= threshold`
    /// must hold once they get there (an off-by-one here would make hot
    /// unreachable at the boundary).
    #[test]
    fn threshold_at_counter_max_is_reachable() {
        let mut sketch = MultiHash::new(4096, 2, COUNTER_MAX, 1_000_000);
        for _ in 0..(COUNTER_MAX - 1) {
            assert_eq!(sketch.classify_write(Lpn(9), 4096), Temperature::Cold);
        }
        assert_eq!(sketch.classify_write(Lpn(9), 4096), Temperature::Hot);
        // Further writes saturate at 15 and stay hot rather than wrapping to 0.
        for _ in 0..40 {
            assert_eq!(sketch.classify_write(Lpn(9), 4096), Temperature::Hot);
        }
        assert_eq!(sketch.estimate(Lpn(9)), COUNTER_MAX);
    }
}
