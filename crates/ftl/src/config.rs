//! FTL configuration.

use crate::error::FtlError;

/// Parameters shared by the FTL implementations in this workspace.
///
/// # Example
///
/// ```
/// use vflash_ftl::FtlConfig;
///
/// let config = FtlConfig { over_provisioning: 0.15, ..FtlConfig::default() };
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtlConfig {
    /// Fraction of raw capacity reserved for garbage collection headroom, in
    /// `[0, 0.9]`. The exported logical capacity is `raw * (1 - over_provisioning)`.
    pub over_provisioning: f64,
    /// Garbage collection starts when the number of free blocks drops to this value.
    /// Must be at least 1 so a relocation destination always exists.
    pub gc_trigger_free_blocks: usize,
    /// Garbage collection keeps reclaiming until this many blocks are free again.
    /// Must be >= `gc_trigger_free_blocks`.
    pub gc_target_free_blocks: usize,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            over_provisioning: 0.10,
            gc_trigger_free_blocks: 2,
            gc_target_free_blocks: 3,
        }
    }
}

impl FtlConfig {
    /// Checks the parameter combination.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::InvalidConfig`] if over-provisioning is outside `[0, 0.9]`,
    /// the trigger is zero, or the target is below the trigger.
    pub fn validate(&self) -> Result<(), FtlError> {
        if !self.over_provisioning.is_finite()
            || !(0.0..=0.9).contains(&self.over_provisioning)
        {
            return Err(FtlError::InvalidConfig {
                reason: "over_provisioning must be within [0, 0.9]".to_string(),
            });
        }
        if self.gc_trigger_free_blocks == 0 {
            return Err(FtlError::InvalidConfig {
                reason: "gc_trigger_free_blocks must be at least 1".to_string(),
            });
        }
        if self.gc_target_free_blocks < self.gc_trigger_free_blocks {
            return Err(FtlError::InvalidConfig {
                reason: "gc_target_free_blocks must be >= gc_trigger_free_blocks".to_string(),
            });
        }
        Ok(())
    }

    /// Number of logical pages exported for a device with `total_pages` physical
    /// pages under this over-provisioning ratio.
    pub fn logical_pages(&self, total_pages: usize) -> u64 {
        ((total_pages as f64) * (1.0 - self.over_provisioning)).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(FtlConfig::default().validate().is_ok());
    }

    #[test]
    fn logical_capacity_respects_over_provisioning() {
        let config = FtlConfig { over_provisioning: 0.25, ..FtlConfig::default() };
        assert_eq!(config.logical_pages(1000), 750);
        let none = FtlConfig { over_provisioning: 0.0, ..FtlConfig::default() };
        assert_eq!(none.logical_pages(1000), 1000);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let bad_op = FtlConfig { over_provisioning: 0.95, ..FtlConfig::default() };
        assert!(bad_op.validate().is_err());
        let bad_trigger = FtlConfig { gc_trigger_free_blocks: 0, ..FtlConfig::default() };
        assert!(bad_trigger.validate().is_err());
        let bad_target = FtlConfig {
            gc_trigger_free_blocks: 5,
            gc_target_free_blocks: 2,
            ..FtlConfig::default()
        };
        assert!(bad_target.validate().is_err());
        let nan = FtlConfig { over_provisioning: f64::NAN, ..FtlConfig::default() };
        assert!(nan.validate().is_err());
    }
}
