//! Logical address types.

use std::fmt;

/// A logical page number: the host-visible page index the FTL maps onto physical
/// pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lpn(pub u64);

impl Lpn {
    /// The logical page number as a plain index.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LPN{}", self.0)
    }
}

impl From<u64> for Lpn {
    fn from(value: u64) -> Self {
        Lpn(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let lpn = Lpn::from(17u64);
        assert_eq!(lpn.as_usize(), 17);
        assert_eq!(lpn.to_string(), "LPN17");
        assert!(Lpn(3) < Lpn(4));
    }
}
