//! FTL error type.

use std::error::Error;
use std::fmt;

use vflash_nand::NandError;

use crate::types::Lpn;

/// Errors returned by flash translation layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FtlError {
    /// The underlying device rejected an operation. Reaching this from the public FTL
    /// API indicates an FTL bug, so the device error is preserved for diagnosis.
    Nand(NandError),
    /// A logical page number is beyond the exported logical capacity.
    LpnOutOfRange {
        /// The offending logical page number.
        lpn: Lpn,
        /// Number of logical pages exported by the FTL.
        logical_pages: u64,
    },
    /// A read targeted a logical page that has never been written.
    UnmappedRead {
        /// The logical page number that has no mapping.
        lpn: Lpn,
    },
    /// Garbage collection could not reclaim space and no free pages remain.
    OutOfSpace,
    /// The device has retired so many blocks that no spare capacity remains; the
    /// FTL has entered read-only mode. Reads are still served; writes are
    /// permanently rejected with this error.
    ReadOnly,
    /// The FTL configuration is inconsistent with the device (e.g. over-provisioning
    /// leaves no logical capacity).
    InvalidConfig {
        /// Explanation of the rejected parameter combination.
        reason: String,
    },
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::Nand(err) => write!(f, "nand device error: {err}"),
            FtlError::LpnOutOfRange { lpn, logical_pages } => {
                write!(f, "{lpn} out of range (device exports {logical_pages} logical pages)")
            }
            FtlError::UnmappedRead { lpn } => write!(f, "read of unmapped {lpn}"),
            FtlError::OutOfSpace => write!(f, "no free pages remain after garbage collection"),
            FtlError::ReadOnly => {
                write!(f, "device is in read-only mode: spare blocks exhausted by bad-block growth")
            }
            FtlError::InvalidConfig { reason } => write!(f, "invalid ftl configuration: {reason}"),
        }
    }
}

impl Error for FtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtlError::Nand(err) => Some(err),
            _ => None,
        }
    }
}

impl From<NandError> for FtlError {
    fn from(err: NandError) -> Self {
        FtlError::Nand(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = FtlError::LpnOutOfRange { lpn: Lpn(99), logical_pages: 10 };
        assert!(err.to_string().contains("LPN99"));
        assert!(err.to_string().contains("10 logical pages"));
        assert!(FtlError::OutOfSpace.to_string().contains("free pages"));
        assert!(FtlError::ReadOnly.to_string().contains("read-only"));
    }

    #[test]
    fn nand_errors_are_wrapped_with_source() {
        let nand = NandError::InvalidConfig { reason: "x".into() };
        let err: FtlError = nand.clone().into();
        assert_eq!(err, FtlError::Nand(nand));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FtlError>();
    }
}
