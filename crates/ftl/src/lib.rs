//! # vflash-ftl
//!
//! A baseline **flash translation layer** (FTL) for the 3D charge-trap NAND model in
//! [`vflash_nand`], plus the building blocks shared by more advanced FTLs:
//!
//! * [`MappingTable`] — page-level logical-to-physical mapping with a reverse map for
//!   garbage collection,
//! * [`BlockAllocator`] — free-block pool and active-block management,
//! * [`gc`] — greedy victim selection and valid-page relocation,
//! * [`hotcold`] — classical two-level hot/cold data identification mechanisms
//!   (request-size check, two-level LRU, access-frequency table, multi-hash counting),
//!   which the PPB strategy reuses as its first identification stage,
//! * [`ConventionalFtl`] — the paper's comparison baseline: a page-mapping FTL with
//!   greedy garbage collection that assumes every page has the same access speed.
//!
//! The [`FlashTranslationLayer`] trait is the interface the trace-driven simulator
//! drives; the PPB strategy in `vflash-ppb` implements the same trait so the two can
//! be compared under identical workloads. The trait's entry point is the
//! submission/completion pair [`IoRequest`] → [`Completion`] (host latency, per-chip
//! op provenance, GC attribution); the scalar `read`/`write` methods are
//! default-implemented wrappers over [`FlashTranslationLayer::submit`], and
//! [`FlashTranslationLayer::submit_batch`] serves a whole queue-depth window at
//! once, scheduling its ops across per-chip ready clocks and completing at the
//! batch makespan ([`BatchCompletion`]).
//!
//! # Example
//!
//! ```
//! use vflash_ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig, Lpn};
//! use vflash_nand::{NandConfig, NandDevice};
//!
//! # fn main() -> Result<(), vflash_ftl::FtlError> {
//! let device = NandDevice::new(NandConfig::small());
//! let mut ftl = ConventionalFtl::new(device, FtlConfig::default())?;
//!
//! let write_latency = ftl.write(Lpn(0), 4096)?;
//! let read_latency = ftl.read(Lpn(0))?;
//! assert!(write_latency > read_latency);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fx;
pub mod gc;
pub mod hotcold;

mod allocator;
mod batch;
mod config;
mod conventional;
mod error;
mod io;
mod mapping;
mod metrics;
mod traits;
mod types;
mod wear;

pub use allocator::BlockAllocator;
pub use batch::BatchCompletion;
pub use config::FtlConfig;
pub use conventional::ConventionalFtl;
pub use error::FtlError;
pub use gc::{
    CostBenefitVictimPolicy, GcOutcome, GreedyVictimPolicy, HotColdVictimPolicy, VictimPolicy,
};
pub use io::{Completion, IoCommand, IoRequest};
pub use mapping::MappingTable;
pub use metrics::FtlMetrics;
pub use traits::FlashTranslationLayer;
pub use types::Lpn;
pub use wear::{WearAwareVictimPolicy, WearStats};
