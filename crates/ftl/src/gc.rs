//! Garbage-collection building blocks.
//!
//! The relocation loop itself differs between FTLs (the conventional FTL copies valid
//! pages into a single destination stream, while the PPB strategy uses garbage
//! collection as its opportunity to migrate data towards pages of suitable speed), so
//! this module only provides the shared pieces: victim selection policies and the
//! [`GcOutcome`] accounting type.

use vflash_nand::{BlockAddr, BlockState, NandDevice, Nanos};

/// Summary of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcOutcome {
    /// Blocks erased.
    pub erased_blocks: u64,
    /// Valid pages copied to new locations.
    pub copied_pages: u64,
    /// Total device time consumed (reads + programs + erases).
    pub time: Nanos,
}

impl GcOutcome {
    /// Merges another outcome into this one.
    pub fn merge(&mut self, other: GcOutcome) {
        self.erased_blocks += other.erased_blocks;
        self.copied_pages += other.copied_pages;
        self.time += other.time;
    }
}

/// Strategy for choosing which block to reclaim next.
///
/// `Debug` is a supertrait so FTLs holding a `Box<dyn VictimPolicy>` can keep
/// deriving `Debug` themselves.
pub trait VictimPolicy: std::fmt::Debug {
    /// Picks a victim block, or `None` if no block is worth (or capable of being)
    /// reclaimed. `exclude` lists blocks that must not be chosen — typically the
    /// currently-open write streams.
    fn select_victim(&self, device: &NandDevice, exclude: &[BlockAddr]) -> Option<BlockAddr>;
}

/// The classic greedy policy: reclaim the full block with the most invalid pages.
///
/// Blocks with zero invalid pages are never selected (erasing them would only move
/// data around without freeing anything). Selection walks the device's
/// [`gc_candidates`](NandDevice::gc_candidates) index — full blocks with at least
/// one invalid page — so its cost is O(candidates), not O(blocks). Ties on the
/// invalid-page count are broken towards the lowest address, keeping victim choice
/// independent of the candidate index's internal ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyVictimPolicy;

impl GreedyVictimPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyVictimPolicy
    }
}

impl VictimPolicy for GreedyVictimPolicy {
    fn select_victim(&self, device: &NandDevice, exclude: &[BlockAddr]) -> Option<BlockAddr> {
        let mut best: Option<(BlockAddr, usize)> = None;
        for addr in device.gc_candidates() {
            if exclude.contains(&addr) {
                continue;
            }
            let block = device.block(addr).expect("candidate addresses are valid");
            debug_assert_eq!(block.state(), BlockState::Full);
            let invalid = block.invalid_pages();
            debug_assert!(invalid > 0);
            match best {
                Some((best_addr, best_invalid))
                    if invalid < best_invalid || (invalid == best_invalid && addr > best_addr) => {}
                _ => best = Some((addr, invalid)),
            }
        }
        best.map(|(addr, _)| addr)
    }
}

/// The classic cost-benefit policy (Rosenblum & Ousterhout's LFS cleaner, as used
/// by eNVy and countless FTLs since): reclaim the block maximising
///
/// ```text
/// benefit   (1 - u)
/// ------- = ------- x age
///  cost       2u
/// ```
///
/// where `u` is the block's valid-page utilisation (cost `2u`: read `u` to copy
/// `u` back out) and `age` is the time since the block last changed — here the
/// device's logical [modification clock](NandDevice::mod_seq) minus the block's
/// [`last_modified`](vflash_nand::Block::last_modified) stamp. Old, mostly-stale
/// blocks score highest; recently-written blocks are left alone because their
/// remaining valid pages are likely to be invalidated for free soon ("hot" blocks
/// clean themselves).
///
/// Fully-invalid blocks (`u = 0`) have infinite score and are always taken first,
/// oldest first. Like the greedy policy, selection walks the device's
/// O(candidates) [`gc_candidates`](NandDevice::gc_candidates) index; ties break
/// towards the lowest address so victim choice is independent of the index's
/// internal ordering.
///
/// **Pressure fallback:** when fewer than two blocks remain allocatable,
/// cost-benefit scoring is only trusted for *copy-free* victims. Cost-benefit
/// happily picks an old block that is still mostly valid, and relocating those
/// valid pages consumes free pages *before* the erase returns any — with the
/// pool nearly empty (a dual-stream FTL can need two fresh blocks for one
/// relocation) that deadlocks the collector. Under pressure the policy
/// therefore takes the oldest fully-invalid candidate — exactly what undiluted
/// cost-benefit ranks first anyway — and only when no copy-free victim exists
/// does it degrade to greedy (most invalid pages = fewest relocations), the
/// emergency mode real FTLs reserve for this situation. Note that with the
/// default `gc_trigger_free_blocks = 2` every collection *episode* starts under
/// pressure, so its first victim may be a greedy choice; once the first erase
/// replenishes the pool, subsequent selections use the full benefit/cost score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostBenefitVictimPolicy;

impl CostBenefitVictimPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        CostBenefitVictimPolicy
    }

    /// Returns the benefit/cost score and the block's age in one lookup.
    fn score(device: &NandDevice, addr: BlockAddr) -> (f64, u64) {
        let block = device.block(addr).expect("candidate addresses are valid");
        debug_assert_eq!(block.state(), BlockState::Full);
        let age = device.mod_seq().saturating_sub(block.last_modified());
        let utilisation = block.valid_pages() as f64 / block.len() as f64;
        if utilisation == 0.0 {
            // Copy-free victims: rank above every utilised block, oldest first.
            return (f64::INFINITY, age);
        }
        ((1.0 - utilisation) / (2.0 * utilisation) * age as f64, age)
    }
}

impl VictimPolicy for CostBenefitVictimPolicy {
    fn select_victim(&self, device: &NandDevice, exclude: &[BlockAddr]) -> Option<BlockAddr> {
        if device.available_blocks() < 2 {
            // Pressure: only copy-free victims are guaranteed reclaimable
            // without consuming free pages first. Take the oldest one (the
            // cost-benefit order among infinite scores); greedy otherwise.
            let mut best: Option<(BlockAddr, u64)> = None;
            for addr in device.gc_candidates() {
                if exclude.contains(&addr) {
                    continue;
                }
                let block = device.block(addr).expect("candidate addresses are valid");
                if block.valid_pages() > 0 {
                    continue;
                }
                let age = device.mod_seq().saturating_sub(block.last_modified());
                match best {
                    Some((best_addr, best_age))
                        if age < best_age || (age == best_age && addr > best_addr) => {}
                    _ => best = Some((addr, age)),
                }
            }
            return best
                .map(|(addr, _)| addr)
                .or_else(|| GreedyVictimPolicy::new().select_victim(device, exclude));
        }
        let mut best: Option<(BlockAddr, f64, u64)> = None;
        for addr in device.gc_candidates() {
            if exclude.contains(&addr) {
                continue;
            }
            // Infinite scores tie among themselves; prefer the older block (it has
            // waited longest), then the lower address, keeping selection fully
            // deterministic.
            let (score, age) = Self::score(device, addr);
            match best {
                Some((best_addr, best_score, best_age))
                    if score < best_score
                        || (score == best_score && age < best_age)
                        || (score == best_score && age == best_age && addr > best_addr) => {}
                _ => best = Some((addr, score, age)),
            }
        }
        best.map(|(addr, _, _)| addr)
    }
}

/// Conventional area-tag value for blocks holding cold-area (cold / icy-cold)
/// data. See [`HotColdVictimPolicy`].
pub const COLD_AREA_TAG: u8 = 0;

/// Conventional area-tag value for blocks holding hot-area (hot / iron-hot) data.
pub const HOT_AREA_TAG: u8 = 1;

/// A hotness-aware greedy policy exploiting the PPB block area tags.
///
/// The PPB strategy never mixes hot-area and cold-area data in one physical block
/// and labels each block with its area via
/// [`NandDevice::set_block_area_tag`](vflash_nand::NandDevice::set_block_area_tag).
/// That separation carries a classic GC insight: the valid pages remaining in a
/// **hot-area** block are likely to be invalidated soon anyway (hot data is
/// rewritten frequently — waiting lets the block clean itself for free), while the
/// valid pages in a **cold-area** block are stable, so copying them now wastes
/// nothing that time would have saved. The policy therefore scores candidates as
///
/// ```text
/// score = invalid_pages + cold_bonus   (cold_bonus only for cold-tagged blocks)
/// ```
///
/// and reclaims the highest score — i.e. it behaves greedily but prefers a
/// cold-tagged victim unless a hot-tagged one offers more than `cold_bonus` extra
/// invalid pages. Untagged blocks (a conventional FTL never tags) get no bonus, so
/// on an untagged device the policy degenerates to [`GreedyVictimPolicy`] exactly.
/// Ties break towards the lowest address, keeping selection deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotColdVictimPolicy {
    cold_bonus: f64,
}

impl HotColdVictimPolicy {
    /// Creates the policy with an explicit cold-victim bonus, measured in
    /// invalid-page equivalents.
    ///
    /// # Panics
    ///
    /// Panics if `cold_bonus` is negative or not finite.
    pub fn new(cold_bonus: f64) -> Self {
        assert!(
            cold_bonus.is_finite() && cold_bonus >= 0.0,
            "cold bonus must be finite and non-negative"
        );
        HotColdVictimPolicy { cold_bonus }
    }

    /// The configured cold-victim bonus.
    pub fn cold_bonus(&self) -> f64 {
        self.cold_bonus
    }
}

impl Default for HotColdVictimPolicy {
    /// A bonus of 2 invalid pages: enough to flip close calls towards cold blocks
    /// without overriding a clearly better hot victim.
    fn default() -> Self {
        HotColdVictimPolicy::new(2.0)
    }
}

impl VictimPolicy for HotColdVictimPolicy {
    fn select_victim(&self, device: &NandDevice, exclude: &[BlockAddr]) -> Option<BlockAddr> {
        let mut best: Option<(BlockAddr, f64)> = None;
        for addr in device.gc_candidates() {
            if exclude.contains(&addr) {
                continue;
            }
            let block = device.block(addr).expect("candidate addresses are valid");
            debug_assert_eq!(block.state(), BlockState::Full);
            let mut score = block.invalid_pages() as f64;
            if block.area_tag() == Some(COLD_AREA_TAG) {
                score += self.cold_bonus;
            }
            match best {
                Some((best_addr, best_score))
                    if score < best_score || (score == best_score && addr > best_addr) => {}
                _ => best = Some((addr, score)),
            }
        }
        best.map(|(addr, _)| addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_nand::{ChipId, NandConfig, NandDevice, PageId};

    fn device() -> NandDevice {
        NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(4)
                .pages_per_block(4)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        )
    }

    fn fill_block(device: &mut NandDevice, block: BlockAddr, invalid: usize) {
        for _ in 0..4 {
            device.program_next(block).unwrap();
        }
        for page in 0..invalid {
            device.invalidate(block.page(PageId(page))).unwrap();
        }
    }

    #[test]
    fn greedy_prefers_most_invalid_full_block() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        let b1 = BlockAddr::new(ChipId(0), 1);
        let b2 = BlockAddr::new(ChipId(0), 2);
        fill_block(&mut dev, b0, 1);
        fill_block(&mut dev, b1, 3);
        fill_block(&mut dev, b2, 2);
        let policy = GreedyVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), Some(b1));
    }

    #[test]
    fn excluded_blocks_are_never_selected() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        let b1 = BlockAddr::new(ChipId(0), 1);
        fill_block(&mut dev, b0, 4);
        fill_block(&mut dev, b1, 1);
        let policy = GreedyVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[b0]), Some(b1));
    }

    #[test]
    fn blocks_without_invalid_pages_are_ignored() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        fill_block(&mut dev, b0, 0);
        let policy = GreedyVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), None);
    }

    #[test]
    fn open_blocks_are_not_victims() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        dev.program_next(b0).unwrap();
        dev.invalidate(b0.page(PageId(0))).unwrap();
        let policy = GreedyVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), None);
    }

    #[test]
    fn cost_benefit_prefers_old_sparse_blocks_over_fresh_dense_ones() {
        let mut dev = device();
        let old_sparse = BlockAddr::new(ChipId(0), 0);
        let fresh_dense = BlockAddr::new(ChipId(0), 1);
        // The sparse block fills and invalidates first, then ages while the dense
        // block is churned: its (1-u)/2u factor AND its age both win.
        fill_block(&mut dev, old_sparse, 3); // u = 1/4
        fill_block(&mut dev, fresh_dense, 1); // u = 3/4, freshly modified
        let policy = CostBenefitVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), Some(old_sparse));
        // Greedy would agree here (more invalid pages) — the interesting case is
        // below, where age overrules a slightly better utilisation.
    }

    #[test]
    fn cost_benefit_lets_age_overrule_utilisation() {
        let mut dev = device();
        let aged = BlockAddr::new(ChipId(0), 0);
        let recent = BlockAddr::new(ChipId(0), 1);
        fill_block(&mut dev, aged, 2); // u = 1/2, modified early
        // Lots of churn elsewhere makes `aged` old.
        let churn = BlockAddr::new(ChipId(0), 2);
        fill_block(&mut dev, churn, 4);
        dev.erase(churn).unwrap();
        fill_block(&mut dev, churn, 4);
        dev.erase(churn).unwrap();
        fill_block(&mut dev, recent, 3); // u = 1/4: better ratio, but brand new
        let policy = CostBenefitVictimPolicy::new();
        // score(aged) = (1/2)/(2*1/2) * age_aged, score(recent) = (3/4)/(1/2) * ~1.
        // The churn ran age_aged far ahead, so the aged block wins despite keeping
        // twice the valid data.
        assert_eq!(policy.select_victim(&dev, &[]), Some(aged));
        // Plain greedy picks the other one.
        assert_eq!(GreedyVictimPolicy::new().select_victim(&dev, &[]), Some(recent));
    }

    #[test]
    fn cost_benefit_takes_copy_free_victims_first() {
        let mut dev = device();
        let partial = BlockAddr::new(ChipId(0), 0);
        let empty = BlockAddr::new(ChipId(0), 1);
        fill_block(&mut dev, partial, 3);
        fill_block(&mut dev, empty, 4); // fully invalid: infinite benefit/cost
        let policy = CostBenefitVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), Some(empty));
        assert_eq!(policy.select_victim(&dev, &[empty]), Some(partial));
    }

    #[test]
    fn cost_benefit_respects_exclusions_and_empty_devices() {
        let mut dev = device();
        let policy = CostBenefitVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), None);
        let b0 = BlockAddr::new(ChipId(0), 0);
        fill_block(&mut dev, b0, 1);
        assert_eq!(policy.select_victim(&dev, &[b0]), None);
    }

    #[test]
    fn hot_cold_policy_prefers_cold_tagged_victims_on_close_calls() {
        let mut dev = device();
        let hot = BlockAddr::new(ChipId(0), 0);
        let cold = BlockAddr::new(ChipId(0), 1);
        dev.set_block_area_tag(hot, Some(HOT_AREA_TAG)).unwrap();
        dev.set_block_area_tag(cold, Some(COLD_AREA_TAG)).unwrap();
        fill_block(&mut dev, hot, 3); // 3 invalid, hot-tagged: score 3
        fill_block(&mut dev, cold, 2); // 2 invalid, cold-tagged: score 2 + 2 = 4
        let policy = HotColdVictimPolicy::default();
        assert_eq!(policy.select_victim(&dev, &[]), Some(cold));
        // Greedy would have taken the hot block.
        assert_eq!(GreedyVictimPolicy::new().select_victim(&dev, &[]), Some(hot));
        // A decisively better hot victim overcomes the bonus: 4 invalid beats 1 + 2.
        let mut dev = device();
        let hot = BlockAddr::new(ChipId(0), 0);
        let cold = BlockAddr::new(ChipId(0), 1);
        dev.set_block_area_tag(hot, Some(HOT_AREA_TAG)).unwrap();
        dev.set_block_area_tag(cold, Some(COLD_AREA_TAG)).unwrap();
        fill_block(&mut dev, hot, 4);
        fill_block(&mut dev, cold, 1);
        assert_eq!(policy.select_victim(&dev, &[]), Some(hot));
    }

    #[test]
    fn hot_cold_policy_degenerates_to_greedy_without_tags() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        let b1 = BlockAddr::new(ChipId(0), 1);
        fill_block(&mut dev, b0, 1);
        fill_block(&mut dev, b1, 3);
        let policy = HotColdVictimPolicy::default();
        let greedy = GreedyVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), greedy.select_victim(&dev, &[]));
        assert_eq!(policy.select_victim(&dev, &[b1]), greedy.select_victim(&dev, &[b1]));
        assert_eq!(policy.select_victim(&dev, &[b0, b1]), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn hot_cold_policy_rejects_negative_bonus() {
        let _ = HotColdVictimPolicy::new(-0.5);
    }

    #[test]
    fn outcome_merging_accumulates() {
        let mut a = GcOutcome { erased_blocks: 1, copied_pages: 3, time: Nanos::from_millis(4) };
        let b = GcOutcome { erased_blocks: 2, copied_pages: 0, time: Nanos::from_millis(8) };
        a.merge(b);
        assert_eq!(a.erased_blocks, 3);
        assert_eq!(a.copied_pages, 3);
        assert_eq!(a.time, Nanos::from_millis(12));
    }
}
