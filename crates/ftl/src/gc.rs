//! Garbage-collection building blocks.
//!
//! The relocation loop itself differs between FTLs (the conventional FTL copies valid
//! pages into a single destination stream, while the PPB strategy uses garbage
//! collection as its opportunity to migrate data towards pages of suitable speed), so
//! this module only provides the shared pieces: victim selection policies and the
//! [`GcOutcome`] accounting type.

use vflash_nand::{BlockAddr, BlockState, NandDevice, Nanos};

/// Summary of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcOutcome {
    /// Blocks erased.
    pub erased_blocks: u64,
    /// Valid pages copied to new locations.
    pub copied_pages: u64,
    /// Total device time consumed (reads + programs + erases).
    pub time: Nanos,
}

impl GcOutcome {
    /// Merges another outcome into this one.
    pub fn merge(&mut self, other: GcOutcome) {
        self.erased_blocks += other.erased_blocks;
        self.copied_pages += other.copied_pages;
        self.time += other.time;
    }
}

/// Strategy for choosing which block to reclaim next.
pub trait VictimPolicy {
    /// Picks a victim block, or `None` if no block is worth (or capable of being)
    /// reclaimed. `exclude` lists blocks that must not be chosen — typically the
    /// currently-open write streams.
    fn select_victim(&self, device: &NandDevice, exclude: &[BlockAddr]) -> Option<BlockAddr>;
}

/// The classic greedy policy: reclaim the full block with the most invalid pages.
///
/// Blocks with zero invalid pages are never selected (erasing them would only move
/// data around without freeing anything). Selection walks the device's
/// [`gc_candidates`](NandDevice::gc_candidates) index — full blocks with at least
/// one invalid page — so its cost is O(candidates), not O(blocks). Ties on the
/// invalid-page count are broken towards the lowest address, keeping victim choice
/// independent of the candidate index's internal ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyVictimPolicy;

impl GreedyVictimPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        GreedyVictimPolicy
    }
}

impl VictimPolicy for GreedyVictimPolicy {
    fn select_victim(&self, device: &NandDevice, exclude: &[BlockAddr]) -> Option<BlockAddr> {
        let mut best: Option<(BlockAddr, usize)> = None;
        for addr in device.gc_candidates() {
            if exclude.contains(&addr) {
                continue;
            }
            let block = device.block(addr).expect("candidate addresses are valid");
            debug_assert_eq!(block.state(), BlockState::Full);
            let invalid = block.invalid_pages();
            debug_assert!(invalid > 0);
            match best {
                Some((best_addr, best_invalid))
                    if invalid < best_invalid || (invalid == best_invalid && addr > best_addr) => {}
                _ => best = Some((addr, invalid)),
            }
        }
        best.map(|(addr, _)| addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_nand::{ChipId, NandConfig, NandDevice, PageId};

    fn device() -> NandDevice {
        NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(4)
                .pages_per_block(4)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        )
    }

    fn fill_block(device: &mut NandDevice, block: BlockAddr, invalid: usize) {
        for _ in 0..4 {
            device.program_next(block).unwrap();
        }
        for page in 0..invalid {
            device.invalidate(block.page(PageId(page))).unwrap();
        }
    }

    #[test]
    fn greedy_prefers_most_invalid_full_block() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        let b1 = BlockAddr::new(ChipId(0), 1);
        let b2 = BlockAddr::new(ChipId(0), 2);
        fill_block(&mut dev, b0, 1);
        fill_block(&mut dev, b1, 3);
        fill_block(&mut dev, b2, 2);
        let policy = GreedyVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), Some(b1));
    }

    #[test]
    fn excluded_blocks_are_never_selected() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        let b1 = BlockAddr::new(ChipId(0), 1);
        fill_block(&mut dev, b0, 4);
        fill_block(&mut dev, b1, 1);
        let policy = GreedyVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[b0]), Some(b1));
    }

    #[test]
    fn blocks_without_invalid_pages_are_ignored() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        fill_block(&mut dev, b0, 0);
        let policy = GreedyVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), None);
    }

    #[test]
    fn open_blocks_are_not_victims() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        dev.program_next(b0).unwrap();
        dev.invalidate(b0.page(PageId(0))).unwrap();
        let policy = GreedyVictimPolicy::new();
        assert_eq!(policy.select_victim(&dev, &[]), None);
    }

    #[test]
    fn outcome_merging_accumulates() {
        let mut a = GcOutcome { erased_blocks: 1, copied_pages: 3, time: Nanos::from_millis(4) };
        let b = GcOutcome { erased_blocks: 2, copied_pages: 0, time: Nanos::from_millis(8) };
        a.merge(b);
        assert_eq!(a.erased_blocks, 3);
        assert_eq!(a.copied_pages, 3);
        assert_eq!(a.time, Nanos::from_millis(12));
    }
}
