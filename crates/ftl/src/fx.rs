//! A fast, deterministic hasher for LPN-keyed tables.
//!
//! The FTL bookkeeping structures (`LruList`, `ColdArea`, the classifier
//! frequency tables) sit on the per-request hot path and key their maps by
//! [`Lpn`](crate::Lpn) — small integers with plenty of entropy in the low
//! bits. The standard library's SipHash is DoS-resistant but costs more than
//! the table operation it guards; profiles of trace replay show it dominating
//! the PPB submit path. This multiply-fold hasher (the FxHash construction
//! used by rustc) is an order of magnitude cheaper and — unlike `RandomState`
//! — has no per-instance seed, so replays stay deterministic by construction.
//!
//! Nothing in the simulator iterates these maps in storage order (eviction
//! order comes from the LRU links and the `BTreeMap` buckets), so the hash
//! function cannot leak into simulated behaviour; it only changes wall-clock
//! speed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative folding constant (2^64 / golden ratio, forced odd).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// The FxHash word-folding hasher: `hash = (rotl5(hash) ^ word) * SEED`.
///
/// Not DoS-resistant — use only for keys the workload itself cannot choose
/// adversarially (LPNs derived from trace offsets are fine).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// Seedless `BuildHasher` for [`FxHasher`]; equal keys hash equally across
/// every map instance and process run.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use std::hash::{BuildHasher, Hash};

    use super::*;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_keys_hash_equally_across_instances() {
        assert_eq!(hash_of(&crate::Lpn(42)), hash_of(&crate::Lpn(42)));
        assert_ne!(hash_of(&crate::Lpn(42)), hash_of(&crate::Lpn(43)));
    }

    #[test]
    fn sequential_keys_spread_across_the_table() {
        // The multiply must push entropy into the high bits hashbrown uses
        // for bucket selection.
        let buckets: FxHashSet<u64> = (0u64..256).map(|n| hash_of(&n) >> 57).collect();
        assert!(buckets.len() > 64, "only {} distinct high-7-bit values", buckets.len());
    }

    #[test]
    fn byte_stream_and_word_writes_are_supported() {
        let mut a = FxHasher::default();
        a.write(b"0123456789abcdef");
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes(*b"01234567"));
        b.write_u64(u64::from_le_bytes(*b"89abcdef"));
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"012");
        assert_ne!(c.finish(), 0);
    }

    #[test]
    fn map_operations_behave_like_std() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for n in 0..1_000u64 {
            map.insert(n, n as u32);
        }
        assert_eq!(map.len(), 1_000);
        for n in 0..1_000u64 {
            assert_eq!(map.get(&n), Some(&(n as u32)));
        }
        for n in (0..1_000u64).step_by(2) {
            assert_eq!(map.remove(&n), Some(n as u32));
        }
        assert_eq!(map.len(), 500);
    }
}
