//! Page-level logical-to-physical mapping.

use vflash_nand::{BlockAddr, ChipId, PageAddr, PageId};

use crate::types::Lpn;

/// A dense page-level mapping table with a reverse map.
///
/// * forward: logical page number → physical page address (for host reads/writes),
/// * reverse: physical page address → logical page number (for garbage collection,
///   which must know which LPN a relocated page belongs to).
///
/// Both directions are stored as flat vectors indexed by page ordinal, so lookups are
/// O(1) and the memory footprint is predictable even for multi-million-page devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingTable {
    forward: Vec<Option<PageAddr>>,
    reverse: Vec<Option<Lpn>>,
    blocks_per_chip: usize,
    pages_per_block: usize,
    mapped: u64,
}

impl MappingTable {
    /// Creates an empty mapping for `logical_pages` LPNs over a device with the given
    /// geometry.
    pub fn new(
        logical_pages: u64,
        chips: usize,
        blocks_per_chip: usize,
        pages_per_block: usize,
    ) -> Self {
        let physical_pages = chips * blocks_per_chip * pages_per_block;
        MappingTable {
            forward: vec![None; logical_pages as usize],
            reverse: vec![None; physical_pages],
            blocks_per_chip,
            pages_per_block,
            mapped: 0,
        }
    }

    /// Number of logical pages this table can map.
    pub fn logical_pages(&self) -> u64 {
        self.forward.len() as u64
    }

    /// Number of logical pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Whether `lpn` is inside the exported logical range.
    pub fn contains(&self, lpn: Lpn) -> bool {
        lpn.as_usize() < self.forward.len()
    }

    fn page_ordinal(&self, addr: PageAddr) -> usize {
        addr.block().flat_index(self.blocks_per_chip) * self.pages_per_block
            + addr.page().0
    }

    /// The physical location of `lpn`, if it has been written.
    pub fn lookup(&self, lpn: Lpn) -> Option<PageAddr> {
        self.forward.get(lpn.as_usize()).copied().flatten()
    }

    /// The logical page stored at `addr`, if any.
    pub fn reverse_lookup(&self, addr: PageAddr) -> Option<Lpn> {
        self.reverse.get(self.page_ordinal(addr)).copied().flatten()
    }

    /// Maps `lpn` to `addr`, returning the previous physical location if the LPN was
    /// already mapped (the caller is responsible for invalidating it on the device).
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is outside the logical range; FTLs validate the range before
    /// mapping.
    pub fn map(&mut self, lpn: Lpn, addr: PageAddr) -> Option<PageAddr> {
        let previous = self.forward[lpn.as_usize()].replace(addr);
        if let Some(old) = previous {
            let ordinal = self.page_ordinal(old);
            self.reverse[ordinal] = None;
        } else {
            self.mapped += 1;
        }
        let ordinal = self.page_ordinal(addr);
        self.reverse[ordinal] = Some(lpn);
        previous
    }

    /// Removes the mapping for `lpn`, returning the physical page it pointed to.
    pub fn unmap(&mut self, lpn: Lpn) -> Option<PageAddr> {
        let previous = self.forward.get_mut(lpn.as_usize())?.take();
        if let Some(addr) = previous {
            let ordinal = self.page_ordinal(addr);
            self.reverse[ordinal] = None;
            self.mapped -= 1;
        }
        previous
    }

    /// Iterates over the logical pages currently stored in `block`, in page order.
    /// Garbage collection uses this to find the LPNs it must relocate.
    pub fn lpns_in_block(&self, block: BlockAddr) -> impl Iterator<Item = (PageId, Lpn)> + '_ {
        let base = block.flat_index(self.blocks_per_chip) * self.pages_per_block;
        (0..self.pages_per_block).filter_map(move |offset| {
            self.reverse[base + offset].map(|lpn| (PageId(offset), lpn))
        })
    }

    /// Consistency check used by tests: every forward entry must have a matching
    /// reverse entry and vice versa. Returns the number of mapped pages.
    pub fn check_consistency(&self) -> Result<u64, String> {
        let mut count = 0;
        for (lpn_index, entry) in self.forward.iter().enumerate() {
            if let Some(addr) = entry {
                count += 1;
                let back = self.reverse[self.page_ordinal(*addr)];
                if back != Some(Lpn(lpn_index as u64)) {
                    return Err(format!(
                        "forward LPN{lpn_index} -> {addr} but reverse says {back:?}"
                    ));
                }
            }
        }
        for (ordinal, entry) in self.reverse.iter().enumerate() {
            if let Some(lpn) = entry {
                let forward = self.forward[lpn.as_usize()];
                let matches = forward
                    .map(|addr| self.page_ordinal(addr) == ordinal)
                    .unwrap_or(false);
                if !matches {
                    return Err(format!("reverse ordinal {ordinal} -> {lpn} not mirrored"));
                }
            }
        }
        if count != self.mapped {
            return Err(format!("mapped counter {} != actual {count}", self.mapped));
        }
        Ok(count)
    }

    /// Helper constructing a [`BlockAddr`] from a flat block ordinal, the inverse of
    /// [`BlockAddr::flat_index`].
    pub fn block_from_flat(&self, flat: usize) -> BlockAddr {
        BlockAddr::new(ChipId(flat / self.blocks_per_chip), flat % self.blocks_per_chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> MappingTable {
        // 2 chips x 4 blocks x 8 pages = 64 physical pages, 48 logical
        MappingTable::new(48, 2, 4, 8)
    }

    fn addr(chip: usize, block: usize, page: usize) -> PageAddr {
        BlockAddr::new(ChipId(chip), block).page(PageId(page))
    }

    #[test]
    fn map_and_lookup_round_trip() {
        let mut map = table();
        assert_eq!(map.lookup(Lpn(5)), None);
        assert_eq!(map.map(Lpn(5), addr(0, 1, 2)), None);
        assert_eq!(map.lookup(Lpn(5)), Some(addr(0, 1, 2)));
        assert_eq!(map.reverse_lookup(addr(0, 1, 2)), Some(Lpn(5)));
        assert_eq!(map.mapped_pages(), 1);
        map.check_consistency().unwrap();
    }

    #[test]
    fn remapping_returns_previous_location_and_clears_reverse() {
        let mut map = table();
        map.map(Lpn(7), addr(0, 0, 0));
        let old = map.map(Lpn(7), addr(1, 3, 7));
        assert_eq!(old, Some(addr(0, 0, 0)));
        assert_eq!(map.reverse_lookup(addr(0, 0, 0)), None);
        assert_eq!(map.reverse_lookup(addr(1, 3, 7)), Some(Lpn(7)));
        assert_eq!(map.mapped_pages(), 1);
        map.check_consistency().unwrap();
    }

    #[test]
    fn unmap_clears_both_directions() {
        let mut map = table();
        map.map(Lpn(3), addr(1, 2, 4));
        assert_eq!(map.unmap(Lpn(3)), Some(addr(1, 2, 4)));
        assert_eq!(map.lookup(Lpn(3)), None);
        assert_eq!(map.reverse_lookup(addr(1, 2, 4)), None);
        assert_eq!(map.mapped_pages(), 0);
        assert_eq!(map.unmap(Lpn(3)), None);
        map.check_consistency().unwrap();
    }

    #[test]
    fn lpns_in_block_lists_resident_pages_in_order() {
        let mut map = table();
        let block = BlockAddr::new(ChipId(1), 2);
        map.map(Lpn(10), block.page(PageId(0)));
        map.map(Lpn(20), block.page(PageId(3)));
        map.map(Lpn(30), block.page(PageId(7)));
        map.map(Lpn(40), addr(0, 0, 0));
        let resident: Vec<_> = map.lpns_in_block(block).collect();
        assert_eq!(
            resident,
            vec![(PageId(0), Lpn(10)), (PageId(3), Lpn(20)), (PageId(7), Lpn(30))]
        );
    }

    #[test]
    fn contains_checks_logical_range() {
        let map = table();
        assert!(map.contains(Lpn(47)));
        assert!(!map.contains(Lpn(48)));
        assert_eq!(map.logical_pages(), 48);
    }

    #[test]
    fn block_from_flat_inverts_flat_index() {
        let map = table();
        for chip in 0..2 {
            for block in 0..4 {
                let addr = BlockAddr::new(ChipId(chip), block);
                assert_eq!(map.block_from_flat(addr.flat_index(4)), addr);
            }
        }
    }
}
