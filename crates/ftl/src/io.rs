//! The submission/completion I/O types of the [`FlashTranslationLayer`] trait.
//!
//! The original trait was a synchronous scalar interface (`read(lpn) -> Nanos`,
//! `write(lpn) -> Nanos`): one page in, one latency out. That shape cannot express
//! queue depth — a replayer holding several requests in flight needs to know *which
//! chips* a request kept busy (so independent requests on different chips can
//! overlap) and *why* the latency was what it was (GC attribution). [`IoRequest`]
//! and [`Completion`] carry exactly that, and the scalar `read`/`write` methods are
//! now thin default-implemented wrappers over
//! [`submit`](FlashTranslationLayer::submit).
//!
//! [`FlashTranslationLayer`]: crate::FlashTranslationLayer
//! [`FlashTranslationLayer::submit`]: crate::FlashTranslationLayer::submit

use vflash_nand::{NandDevice, Nanos, OpSpan};

use crate::gc::GcOutcome;
use crate::types::Lpn;

/// What a submitted request asks the FTL to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoCommand {
    /// Read one logical page.
    Read,
    /// Write one logical page. `request_bytes` is the size of the original host
    /// request this page write belongs to; first-stage hot/cold classifiers such as
    /// the request-size check use it as their hint.
    Write {
        /// Size of the original host request in bytes.
        request_bytes: u32,
    },
}

/// A single-page I/O request submitted to an FTL.
///
/// Requests address one logical page each; a multi-page host request is submitted
/// as a chain of page requests (the replayer keeps the chain together so its
/// completion latency is the chain's span).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoRequest {
    /// The logical page addressed.
    pub lpn: Lpn,
    /// Read or write (with the host-request-size hint).
    pub command: IoCommand,
}

impl IoRequest {
    /// A read of `lpn`.
    pub fn read(lpn: Lpn) -> Self {
        IoRequest { lpn, command: IoCommand::Read }
    }

    /// A write of `lpn` belonging to a host request of `request_bytes` bytes.
    pub fn write(lpn: Lpn, request_bytes: u32) -> Self {
        IoRequest { lpn, command: IoCommand::Write { request_bytes } }
    }

    /// Whether this is a write request.
    pub fn is_write(&self) -> bool {
        matches!(self.command, IoCommand::Write { .. })
    }
}

/// The completion of one submitted request.
///
/// Beyond the host latency (what the scalar API returned), a completion reports the
/// *provenance* of that latency: every timed device operation charged to the
/// request — in execution order, each with the chip whose clock it advanced — and
/// the garbage-collection share. `ops` is an [`OpSpan`] — an index range into the
/// device's op arena, resolved with [`NandDevice::ops`] — so completions are
/// small `Copy` values and the submit path never allocates per request. Op
/// provenance is only collected while the FTL's device has
/// [op tracing](vflash_nand::NandDevice::set_op_tracing) enabled; otherwise the
/// span is empty and the completion costs nothing extra to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Completion {
    /// Total latency charged to the host (garbage-collection time included for
    /// writes). Always equals the sum of the spanned op latencies when op tracing
    /// is on.
    pub latency: Nanos,
    /// The timed device operations performed on the request's behalf, in execution
    /// order, as a span into the device's op arena. Empty unless op tracing is
    /// enabled; stale once the arena is cleared.
    pub ops: OpSpan,
    /// Garbage-collection work triggered by (and charged to) this request: pages
    /// copied, blocks erased and the time share. All-zero for reads and for writes
    /// that did not trigger GC.
    pub gc: GcOutcome,
    /// Read-retry steps the device needed to correct this request's host read.
    /// Zero for writes and for reads that passed ECC on the first sense. The
    /// retry latency is already folded into `latency`.
    pub read_retries: u32,
    /// Whether the host read exhausted the retry ladder and returned no data.
    /// The FTL still charges the full ladder latency; the data is lost.
    pub uncorrectable: bool,
}

impl Completion {
    /// A completion charging only `latency`, with no GC attribution.
    pub fn new(latency: Nanos) -> Self {
        Completion {
            latency,
            ops: OpSpan::EMPTY,
            gc: GcOutcome::default(),
            read_retries: 0,
            uncorrectable: false,
        }
    }

    /// The time this completion spent in garbage collection.
    pub fn gc_time(&self) -> Nanos {
        self.gc.time
    }

    /// The distinct chips whose clocks this completion advanced, in first-touch
    /// order, resolved against the device that served the request. Empty unless
    /// op tracing was enabled.
    pub fn chips_touched(&self, device: &NandDevice) -> Vec<vflash_nand::ChipId> {
        let mut chips = Vec::new();
        for op in device.ops(self.ops) {
            if !chips.contains(&op.chip) {
                chips.push(op.chip);
            }
        }
        chips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_nand::ChipId;

    #[test]
    fn request_constructors_round_trip() {
        let read = IoRequest::read(Lpn(7));
        assert_eq!(read.lpn, Lpn(7));
        assert_eq!(read.command, IoCommand::Read);
        assert!(!read.is_write());

        let write = IoRequest::write(Lpn(9), 4096);
        assert_eq!(write.command, IoCommand::Write { request_bytes: 4096 });
        assert!(write.is_write());
    }

    #[test]
    fn completions_report_touched_chips_in_first_touch_order() {
        let config = vflash_nand::NandConfig::builder()
            .chips(2)
            .blocks_per_chip(4)
            .pages_per_block(4)
            .page_size_bytes(4096)
            .build()
            .unwrap();
        let mut device = NandDevice::new(config);
        device.set_op_tracing(true);
        let a = device.allocate_block().unwrap(); // chip 0
        let b = device.allocate_block().unwrap(); // chip 1
        assert_ne!(a.chip(), b.chip());
        let mark = device.op_mark();
        // Touch chip 1 first, then chip 0, then chip 1 again: first-touch order
        // must be preserved and the repeat deduplicated.
        device.program_next(b).unwrap();
        device.program_next(a).unwrap();
        device.program_next(b).unwrap();
        let mut completion = Completion::new(Nanos::from_micros(100));
        completion.ops = device.ops_since(mark);
        assert_eq!(completion.chips_touched(&device), vec![b.chip(), a.chip()]);
        assert_eq!(completion.gc_time(), Nanos::ZERO);

        let untraced = Completion::new(Nanos::from_micros(5));
        assert!(untraced.chips_touched(&device).is_empty());
        assert_eq!(untraced.chips_touched(&device), Vec::<ChipId>::new());
    }
}
