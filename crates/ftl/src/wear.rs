//! Wear statistics and a wear-aware garbage-collection victim policy.
//!
//! The paper's evaluation deliberately focuses on access performance and notes that
//! "many excellent wear-leveling designs can be easily integrated into the flash
//! architecture to extend its lifetime" (§4.1). This module provides that integration
//! point: device-wide wear statistics and a [`VictimPolicy`] that trades a little
//! reclaim efficiency for evenness of erase counts, usable by both the conventional
//! FTL and the PPB FTL through the same [`VictimPolicy`] trait.

use vflash_nand::{BlockAddr, BlockState, NandDevice};

use crate::gc::VictimPolicy;

/// Summary of how evenly erases are spread across the device's blocks.
///
/// Retired ([`BlockState::Bad`]) blocks no longer participate in wear leveling —
/// they take no further erases — so they are counted separately in
/// [`bad_blocks`](WearStats::bad_blocks) and excluded from the min/max/mean/σ
/// statistics, which would otherwise be dragged down by frozen counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WearStats {
    /// Smallest per-block erase count (healthy blocks only).
    pub min_erases: u64,
    /// Largest per-block erase count (healthy blocks only).
    pub max_erases: u64,
    /// Mean per-block erase count (healthy blocks only).
    pub mean_erases: f64,
    /// Population standard deviation of the per-block erase counts (healthy
    /// blocks only).
    pub std_dev: f64,
    /// Blocks retired as bad, excluded from the statistics above.
    pub bad_blocks: usize,
}

impl WearStats {
    /// Collects wear statistics over every healthy block of `device`, counting
    /// retired blocks separately.
    pub fn collect(device: &NandDevice) -> WearStats {
        let mut counts = Vec::new();
        let mut bad_blocks = 0usize;
        for addr in device.block_addrs() {
            let block = device.block(addr).expect("iterating device addresses");
            if block.state() == BlockState::Bad {
                bad_blocks += 1;
            } else {
                counts.push(block.erase_count());
            }
        }
        if counts.is_empty() {
            return WearStats { bad_blocks, ..WearStats::default() };
        }
        let min_erases = *counts.iter().min().expect("non-empty");
        let max_erases = *counts.iter().max().expect("non-empty");
        let mean_erases = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let variance = counts
            .iter()
            .map(|&count| {
                let diff = count as f64 - mean_erases;
                diff * diff
            })
            .sum::<f64>()
            / counts.len() as f64;
        WearStats { min_erases, max_erases, mean_erases, std_dev: variance.sqrt(), bad_blocks }
    }

    /// The spread between the most- and least-worn blocks. Wear-leveling aims to keep
    /// this small relative to the endurance budget.
    pub fn spread(&self) -> u64 {
        self.max_erases - self.min_erases
    }
}

/// A greedy victim policy with a wear penalty.
///
/// The score of a candidate block is its invalid-page count minus
/// `wear_weight x (block erases - minimum erases)`, so heavily-worn blocks are only
/// reclaimed when they offer substantially more free space than less-worn ones. With
/// `wear_weight = 0` this degenerates to the plain greedy policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearAwareVictimPolicy {
    wear_weight: f64,
}

impl WearAwareVictimPolicy {
    /// Creates the policy with the given wear penalty per excess erase.
    ///
    /// # Panics
    ///
    /// Panics if `wear_weight` is negative or not finite.
    pub fn new(wear_weight: f64) -> Self {
        assert!(
            wear_weight.is_finite() && wear_weight >= 0.0,
            "wear weight must be finite and non-negative"
        );
        WearAwareVictimPolicy { wear_weight }
    }

    /// The configured wear penalty.
    pub fn wear_weight(&self) -> f64 {
        self.wear_weight
    }
}

impl Default for WearAwareVictimPolicy {
    fn default() -> Self {
        WearAwareVictimPolicy::new(0.5)
    }
}

impl VictimPolicy for WearAwareVictimPolicy {
    fn select_victim(&self, device: &NandDevice, exclude: &[BlockAddr]) -> Option<BlockAddr> {
        // Like the greedy policy, selection walks the device's O(candidates)
        // gc_candidates() index instead of every block. The wear baseline (the
        // documented "minimum erases" term) shifts every candidate's score by the
        // same constant, so dropping it changes no selection; scores here use the
        // raw erase count. Ties break towards the lowest address so the choice is
        // independent of the index's internal ordering.
        let mut best: Option<(BlockAddr, f64)> = None;
        for addr in device.gc_candidates() {
            if exclude.contains(&addr) {
                continue;
            }
            let block = device.block(addr).expect("candidate addresses are valid");
            debug_assert!(block.state() == BlockState::Full && block.invalid_pages() > 0);
            let score =
                block.invalid_pages() as f64 - block.erase_count() as f64 * self.wear_weight;
            match best {
                Some((best_addr, best_score))
                    if score < best_score || (score == best_score && addr > best_addr) => {}
                _ => best = Some((addr, score)),
            }
        }
        best.map(|(addr, _)| addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vflash_nand::{ChipId, NandConfig, PageId};

    fn device() -> NandDevice {
        NandDevice::new(
            NandConfig::builder()
                .chips(1)
                .blocks_per_chip(4)
                .pages_per_block(4)
                .page_size_bytes(4096)
                .build()
                .unwrap(),
        )
    }

    fn fill_block(device: &mut NandDevice, block: BlockAddr, invalid: usize) {
        for _ in 0..4 {
            device.program_next(block).unwrap();
        }
        for page in 0..invalid {
            device.invalidate(block.page(PageId(page))).unwrap();
        }
    }

    fn wear_block(device: &mut NandDevice, block: BlockAddr, erases: usize) {
        for _ in 0..erases {
            fill_block(device, block, 4);
            device.erase(block).unwrap();
        }
    }

    #[test]
    fn wear_stats_on_a_fresh_device_are_zero() {
        let stats = WearStats::collect(&device());
        assert_eq!(stats.min_erases, 0);
        assert_eq!(stats.max_erases, 0);
        assert_eq!(stats.mean_erases, 0.0);
        assert_eq!(stats.spread(), 0);
        assert_eq!(stats.std_dev, 0.0);
    }

    #[test]
    fn wear_stats_reflect_uneven_erases() {
        let mut dev = device();
        wear_block(&mut dev, BlockAddr::new(ChipId(0), 0), 4);
        wear_block(&mut dev, BlockAddr::new(ChipId(0), 1), 2);
        let stats = WearStats::collect(&dev);
        assert_eq!(stats.min_erases, 0);
        assert_eq!(stats.max_erases, 4);
        assert_eq!(stats.spread(), 4);
        assert!((stats.mean_erases - 1.5).abs() < 1e-12);
        assert!(stats.std_dev > 0.0);
    }

    #[test]
    fn wear_stats_skip_retired_blocks() {
        let mut dev = device();
        let healthy = BlockAddr::new(ChipId(0), 0);
        let doomed = BlockAddr::new(ChipId(0), 1);
        wear_block(&mut dev, healthy, 2);
        wear_block(&mut dev, doomed, 9);
        dev.retire_block(doomed).unwrap();
        let stats = WearStats::collect(&dev);
        assert_eq!(stats.bad_blocks, 1);
        // The retired block's 9 erases no longer skew the statistics.
        assert_eq!(stats.max_erases, 2);
        assert!((stats.mean_erases - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_matches_plain_greedy() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        let b1 = BlockAddr::new(ChipId(0), 1);
        fill_block(&mut dev, b0, 2);
        fill_block(&mut dev, b1, 3);
        let policy = WearAwareVictimPolicy::new(0.0);
        assert_eq!(policy.select_victim(&dev, &[]), Some(b1));
    }

    #[test]
    fn heavily_worn_blocks_are_deprioritised() {
        let mut dev = device();
        let worn = BlockAddr::new(ChipId(0), 0);
        let fresh = BlockAddr::new(ChipId(0), 1);
        wear_block(&mut dev, worn, 6);
        fill_block(&mut dev, worn, 4); // 4 invalid pages, but 6 prior erases
        fill_block(&mut dev, fresh, 3); // 3 invalid pages, no wear
        let policy = WearAwareVictimPolicy::new(0.5);
        // score(worn) = 4 - 0.5 * 6 = 1, score(fresh) = 3 -> the fresher block wins.
        assert_eq!(policy.select_victim(&dev, &[]), Some(fresh));
        // A pure greedy policy would have picked the worn block instead.
        let greedy = WearAwareVictimPolicy::new(0.0);
        assert_eq!(greedy.select_victim(&dev, &[]), Some(worn));
    }

    #[test]
    fn excluded_and_unreclaimable_blocks_are_skipped() {
        let mut dev = device();
        let b0 = BlockAddr::new(ChipId(0), 0);
        let b1 = BlockAddr::new(ChipId(0), 1);
        fill_block(&mut dev, b0, 4);
        fill_block(&mut dev, b1, 0); // full but fully valid: nothing to reclaim
        let policy = WearAwareVictimPolicy::default();
        assert_eq!(policy.select_victim(&dev, &[b0]), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = WearAwareVictimPolicy::new(-1.0);
    }
}
