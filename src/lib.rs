//! # vflash
//!
//! Umbrella crate for the reproduction of *"Boosting the Performance of 3D Charge
//! Trap NAND Flash with Asymmetric Feature Process Size Characteristic"* (DAC 2017).
//!
//! It simply re-exports the workspace crates so downstream users can depend on a
//! single crate:
//!
//! * [`nand`] — the 3D charge-trap NAND device model with per-layer latency,
//! * [`trace`] — MSR-style trace parsing and synthetic enterprise workloads,
//! * [`ftl`] — the conventional page-mapping FTL baseline and hot/cold classifiers,
//! * [`ppb`] — the Progressive Performance Boosting strategy (the paper's
//!   contribution),
//! * [`sim`] — the trace-driven simulator and the experiment sweeps that regenerate
//!   every figure of the paper's evaluation,
//! * [`kv`] — an LSM key-value store running on the simulated device, turning
//!   application operations (WAL appends, flushes, compactions) into real FTL
//!   traffic,
//! * [`fleet`] — the host tier: N simulated devices behind a striped keyspace,
//!   a host DRAM writeback cache and weighted-share tenant queues, reporting
//!   fan-out tail amplification.
//!
//! The crate-dependency diagram, the replay-engine internals and the data flow
//! from trace to run summary are documented in `docs/ARCHITECTURE.md` at the
//! repository root.
//!
//! # Example
//!
//! ```
//! use vflash::ftl::{FlashTranslationLayer, Lpn};
//! use vflash::nand::{NandConfig, NandDevice};
//! use vflash::ppb::{PpbConfig, PpbFtl};
//!
//! # fn main() -> Result<(), vflash::ftl::FtlError> {
//! let device = NandDevice::new(NandConfig::small());
//! let mut ftl = PpbFtl::new(device, PpbConfig::default())?;
//! ftl.write(Lpn(0), 512)?;
//! let latency = ftl.read(Lpn(0))?;
//! assert!(latency > vflash::nand::Nanos::ZERO);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vflash_fleet as fleet;
pub use vflash_ftl as ftl;
pub use vflash_kv as kv;
pub use vflash_nand as nand;
pub use vflash_ppb as ppb;
pub use vflash_sim as sim;
pub use vflash_trace as trace;
