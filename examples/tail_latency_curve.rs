//! Tail latency vs burstiness: replay the same mean load under increasingly
//! heavy-tailed arrival models and watch conventional vs PPB p99/p99.9 spread.
//!
//! Every row of this curve offers the **same mean rate** — half the device's
//! measured saturation throughput, so smooth arrivals are comfortably served —
//! and changes only how the arrivals clump: jittered-uniform gaps, then bounded
//! Pareto gaps of falling shape (heavier tails), then MMPP-style on/off bursts.
//! Mean latency barely moves down the table; the p99.9 is what grows, because
//! burst backlogs queue requests behind every slow page access. That is the
//! regime the paper's placement claims matter in: PPB's fast-page placement of
//! hot data shortens exactly the accesses a backlog multiplies.
//!
//! ```text
//! cargo run --release --example tail_latency_curve
//! ```

use std::error::Error;

use vflash::sim::experiments::{burst_sweep_at, burst_sweep_mean_iops, ExperimentScale, Workload};

fn main() -> Result<(), Box<dyn Error>> {
    let scale = ExperimentScale {
        requests: 20_000,
        working_set_bytes: 48 * 1024 * 1024,
        chips: 8,
        ..ExperimentScale::quick()
    };
    let mean = burst_sweep_mean_iops(Workload::WebSqlServer, &scale)?;
    println!(
        "web-sql-server workload: {} requests at a fixed {mean:.0} IOPS mean \
         (half of device saturation), open loop\n",
        scale.requests
    );

    println!(
        "{:<28} {:>6}  {:>10} {:>10}  {:>10} {:>10}  {:>8}",
        "arrival model", "busy%", "conv p99", "ppb p99", "conv p99.9", "ppb p99.9", "peak-qd"
    );
    for row in burst_sweep_at(Workload::WebSqlServer, &scale, mean)? {
        println!(
            "{:<28} {:>5.1}%  {:>10} {:>10}  {:>10} {:>10}  {:>8}",
            row.arrival.label(),
            row.conventional.busy_arrival_fraction() * 100.0,
            row.conventional.read_latency.p99.to_string(),
            row.ppb.read_latency.p99.to_string(),
            row.conventional.read_latency.p999.to_string(),
            row.ppb.read_latency.p999.to_string(),
            row.conventional.peak_queue_depth,
        );
    }
    println!(
        "\nSame mean load in every row — only the burstiness changes. The tail spreads\n\
         between the uniform top row and the heavy-tailed bottom rows (that growth is\n\
         pure queueing), and the conventional-vs-ppb columns show how much of that\n\
         amplified tail speed-aware placement claws back."
    );
    Ok(())
}
