//! Quickstart: build a small 3D charge-trap device, run the PPB FTL on it, and watch
//! hot data gravitate towards fast pages.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::error::Error;

use vflash::ftl::{FlashTranslationLayer, Lpn};
use vflash::nand::{NandConfig, NandDevice, SpeedProfile};
use vflash::ppb::{PpbConfig, PpbFtl};

fn main() -> Result<(), Box<dyn Error>> {
    // A small device: 1 chip, 64 blocks of 32 pages, 16 KiB pages, bottom layer 4x
    // faster than the top layer.
    let config = NandConfig::builder()
        .chips(1)
        .blocks_per_chip(64)
        .pages_per_block(32)
        .page_size_bytes(16 * 1024)
        .speed_ratio(4.0)
        .speed_profile(SpeedProfile::Linear)
        .build()?;
    println!(
        "device: {} blocks x {} pages, {:.1} MiB raw, top-layer read {} vs bottom-layer read {}",
        config.total_blocks(),
        config.pages_per_block(),
        config.capacity_bytes() as f64 / (1024.0 * 1024.0),
        config.latency_model().read_latency(vflash::nand::PageId(0)),
        config
            .latency_model()
            .read_latency(vflash::nand::PageId(config.pages_per_block() - 1)),
    );

    let mut ftl = PpbFtl::new(NandDevice::new(config), PpbConfig::default())?;

    // Metadata-like data: small writes, frequently re-read.
    for round in 0..6 {
        for lpn in 0..16u64 {
            ftl.write(Lpn(lpn), 512)?;
            ftl.read(Lpn(lpn))?;
        }
        // Cache-like data: small writes, never read back.
        for lpn in 100..116u64 {
            ftl.write(Lpn(lpn), 512)?;
        }
        // Bulk data: large writes, read occasionally.
        for lpn in 200..232u64 {
            ftl.write(Lpn(lpn), 256 * 1024)?;
        }
        let _ = round;
    }

    println!("\nhotness after the workload:");
    for (label, lpn) in [("metadata  LPN0", 0u64), ("cache     LPN100", 100), ("bulk      LPN200", 200)] {
        let level = ftl.hotness_of(Lpn(lpn));
        let location = ftl.mapping().lookup(Lpn(lpn)).expect("written above");
        let class = ftl.virtual_blocks().class_of_page(location.page());
        println!(
            "  {label}: {level:<9} stored at {location} (speed class {}, {})",
            class.0,
            if class.is_slowest() { "slow pages" } else { "fast pages" },
        );
    }

    let metrics = ftl.metrics();
    println!("\nmetrics:");
    println!("  host writes          {}", metrics.host_writes);
    println!("  host reads           {}", metrics.host_reads);
    println!("  mean read latency    {}", metrics.mean_read_latency());
    println!("  mean write latency   {}", metrics.mean_write_latency());
    println!("  GC erased blocks     {}", metrics.gc_erased_blocks);
    println!("  write amplification  {:.3}", metrics.write_amplification());
    Ok(())
}
