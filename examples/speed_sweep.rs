//! Speed-difference sweep: how the PPB advantage grows as the top-to-bottom layer
//! speed ratio increases from 2x to 5x (the paper's Figures 13/14 in miniature).
//!
//! ```text
//! cargo run --release --example speed_sweep
//! ```

use std::error::Error;

use vflash::nand::Nanos;
use vflash::sim::experiments::{read_latency_sweep, ExperimentScale, Workload, SPEED_RATIOS};

fn main() -> Result<(), Box<dyn Error>> {
    let scale = ExperimentScale {
        requests: 10_000,
        working_set_bytes: 48 * 1024 * 1024,
        ..ExperimentScale::quick()
    };
    println!("read latency vs page access speed difference ({} requests per run)\n", scale.requests);
    println!("{:<16} {:>10} {:>18} {:>16} {:>12}", "workload", "speed diff", "conventional FTL", "FTL with PPB", "improvement");
    for workload in Workload::ALL {
        let rows = read_latency_sweep(workload, &scale)?;
        for row in rows {
            let improvement = if row.conventional == Nanos::ZERO {
                0.0
            } else {
                (row.conventional.as_nanos() as f64 - row.ppb.as_nanos() as f64)
                    / row.conventional.as_nanos() as f64
                    * 100.0
            };
            println!(
                "{:<16} {:>9.0}x {:>17.3}s {:>15.3}s {:>11.2}%",
                workload.label(),
                row.speed_ratio,
                row.conventional.as_secs_f64(),
                row.ppb.as_secs_f64(),
                improvement,
            );
        }
    }
    let _ = SPEED_RATIOS;
    Ok(())
}
