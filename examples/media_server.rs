//! Media-server scenario: replay the synthetic media-server workload (the stand-in
//! for the MSR media-server trace) against both the conventional FTL and the PPB FTL
//! and compare the outcome.
//!
//! ```text
//! cargo run --release --example media_server
//! ```

use std::error::Error;

use vflash::sim::experiments::{run_conventional, run_ppb, ExperimentScale, Workload};
use vflash::sim::Comparison;

fn main() -> Result<(), Box<dyn Error>> {
    let scale = ExperimentScale {
        requests: 20_000,
        working_set_bytes: 64 * 1024 * 1024,
        ..ExperimentScale::quick()
    };
    let trace = Workload::MediaServer.trace(&scale);
    let stats = trace.stats();
    println!(
        "media-server workload: {} requests, {:.0}% reads, mean request {:.0} KiB, reread fraction {:.2}",
        trace.len(),
        stats.read_ratio() * 100.0,
        stats.mean_request_bytes / 1024.0,
        stats.reread_fraction,
    );

    let config = scale.device_config(16 * 1024, 2.0);
    println!(
        "device: {} blocks x {} pages x {} KiB ({:.1} MiB raw), 2x speed difference\n",
        config.total_blocks(),
        config.pages_per_block(),
        config.page_size_bytes() / 1024,
        config.capacity_bytes() as f64 / (1024.0 * 1024.0),
    );

    let baseline = run_conventional(&trace, &config)?;
    let variant = run_ppb(&trace, &config)?;
    println!("conventional FTL : {baseline}");
    println!("FTL with PPB     : {variant}");

    let comparison = Comparison::new(baseline, variant);
    println!("\nread enhancement   {:>6.2}%", comparison.read_enhancement_pct());
    println!("write enhancement  {:>6.2}%", comparison.write_enhancement_pct());
    println!("erase count change {:>6.2}%", comparison.erase_increase_pct());
    Ok(())
}
