//! Web/SQL-server scenario: the workload where PPB shines — small random requests
//! with a strongly skewed, frequently re-read hot set.
//!
//! The example also demonstrates swapping the first-stage hot/cold classifier
//! (two-level LRU instead of the default size check).
//!
//! ```text
//! cargo run --release --example web_sql_server
//! ```

use std::error::Error;

use vflash::ppb::PpbConfig;
use vflash::sim::experiments::{
    run_conventional, run_ppb, run_ppb_with, Classifier, ExperimentScale, Workload,
};
use vflash::sim::Comparison;

fn main() -> Result<(), Box<dyn Error>> {
    let scale = ExperimentScale {
        requests: 20_000,
        working_set_bytes: 48 * 1024 * 1024,
        ..ExperimentScale::quick()
    };
    let trace = Workload::WebSqlServer.trace(&scale);
    let stats = trace.stats();
    println!(
        "web-sql-server workload: {} requests, {:.0}% reads, mean request {:.1} KiB, reread fraction {:.2}",
        trace.len(),
        stats.read_ratio() * 100.0,
        stats.mean_request_bytes / 1024.0,
        stats.reread_fraction,
    );

    let config = scale.device_config(16 * 1024, 4.0);
    println!(
        "device: {} blocks x {} pages x {} KiB, 4x speed difference\n",
        config.total_blocks(),
        config.pages_per_block(),
        config.page_size_bytes() / 1024,
    );

    let baseline = run_conventional(&trace, &config)?;
    println!("conventional FTL           : {baseline}");

    let ppb_size_check = run_ppb(&trace, &config)?;
    println!("PPB (size-check stage)     : {ppb_size_check}");

    let ppb_lru = run_ppb_with(&trace, &config, PpbConfig::default(), Classifier::TwoLevelLru)?;
    println!("PPB (two-level-LRU stage)  : {ppb_lru}");

    let size_check = Comparison::new(baseline.clone(), ppb_size_check);
    let lru = Comparison::new(baseline, ppb_lru);
    println!("\nread enhancement (size check)     {:>6.2}%", size_check.read_enhancement_pct());
    println!("read enhancement (two-level LRU)  {:>6.2}%", lru.read_enhancement_pct());
    println!("write enhancement (size check)    {:>6.2}%", size_check.write_enhancement_pct());
    println!("erase count change (size check)   {:>6.2}%", size_check.erase_increase_pct());
    Ok(())
}
