//! An LSM key-value store running on the simulated flash device.
//!
//! ```text
//! cargo run --example kv_store
//! ```
//!
//! Opens a `vflash-kv` store on a PPB-managed device, writes and reads some
//! keys, forces a flush, simulates a crash, and recovers — printing the device
//! traffic (WAL appends, table builds, compactions) each stage generated.
//! Then it runs the zipf-skewed workload driver against both FTLs and prints
//! the application-level comparison.

use std::error::Error;

use vflash::ftl::FlashTranslationLayer;
use vflash::kv::workload::{compare_conventional_vs_ppb, KvWorkloadConfig};
use vflash::kv::{FlashStore, KvConfig, KvStore};
use vflash::nand::{NandConfig, NandDevice};
use vflash::ppb::{PpbConfig, PpbFtl};

fn main() -> Result<(), Box<dyn Error>> {
    // A small device under the paper's PPB FTL: 1 chip, 96 blocks of 64 pages,
    // 4 KiB pages.
    let config = NandConfig::builder()
        .chips(1)
        .blocks_per_chip(96)
        .pages_per_block(64)
        .page_size_bytes(4 * 1024)
        .build()?;
    let ftl = PpbFtl::new(NandDevice::new(config), PpbConfig::default())?;
    let mut kv = KvStore::open(FlashStore::new(ftl), KvConfig::default())?;

    // Write a batch, overwrite some of it, delete a little.
    for i in 0..500u32 {
        let key = format!("user:{i:04}");
        kv.put(key.as_bytes(), format!("profile-v1-{i}").as_bytes())?;
    }
    for i in 0..100u32 {
        let key = format!("user:{i:04}");
        kv.put(key.as_bytes(), format!("profile-v2-{i}").as_bytes())?;
    }
    kv.delete(b"user:0042")?;
    kv.flush()?;

    println!("after {} puts, 1 delete and a flush:", 500 + 100);
    let stats = *kv.stats();
    println!(
        "  {} flushes, {} compactions, {} tables across {} levels",
        stats.flushes,
        stats.compactions,
        kv.layout().len(),
        kv.level_count(),
    );
    let io = kv.flash().io_stats();
    println!(
        "  device traffic: {} page writes, {} page reads, {} of simulated device time",
        io.pages_written,
        io.pages_read,
        format_args!("{:.3}s", kv.device_clock().as_secs_f64()),
    );
    let wa = kv.write_amplification();
    println!(
        "  write amplification: app {:.2} x ftl {:.2} = end-to-end {:.2}",
        wa.app, wa.ftl, wa.end_to_end
    );

    // Point reads hit the memtable or the tables; the receipt says which.
    let hot = kv.get(b"user:0007")?;
    println!(
        "\nget user:0007 -> {:?} (answered by {:?})",
        hot.value.as_deref().map(String::from_utf8_lossy),
        hot.source,
    );
    let gone = kv.get(b"user:0042")?;
    println!("get user:0042 -> {:?} (deleted)", gone.value);

    // Range scan across the overwrite boundary.
    let range = kv.scan(b"user:0098", b"user:0103")?;
    println!("scan [user:0098, user:0103) -> {} keys", range.len());

    // Crash: every in-memory structure is dropped; only the device survives.
    // Recovery reads the superblock, manifest, table indexes and WAL tail.
    let device_state = kv.crash();
    let mut recovered = KvStore::open(device_state, KvConfig::default())?;
    let back = recovered.get(b"user:0007")?;
    println!(
        "\nafter crash + recovery: user:0007 -> {:?}, hotness-aware FTL: {}",
        back.value.as_deref().map(String::from_utf8_lossy),
        recovered.flash().ftl().name(),
    );

    // Finally, the app-level comparison the `lsm` experiments section prints.
    println!("\nzipf-skewed workload, conventional vs PPB (smoke scale):");
    let comparison = compare_conventional_vs_ppb(KvConfig::default(), &KvWorkloadConfig::smoke())?;
    for summary in [&comparison.conventional, &comparison.ppb] {
        println!(
            "  {:<12} sstable-read p99 {:>7.0} us, stall p99 {:>8.0} us, e2e WA {:.2}",
            summary.ftl,
            summary.sstable_read.p99.as_micros_f64(),
            summary.compaction_stall.p99.as_micros_f64(),
            summary.write_amplification.end_to_end,
        );
    }
    Ok(())
}
