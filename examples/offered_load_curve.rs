//! Latency vs offered load: drive the same trace **open-loop** at increasing rate
//! scales and watch the response time decompose into service time and queueing
//! delay.
//!
//! Unlike the closed-loop queue-depth sweep (which always saturates the device),
//! the open-loop driver issues each request at its trace-recorded arrival time —
//! scaled by `rate_scale` — and queues when the device is busy. Below the
//! saturation knee the device keeps up: achieved IOPS tracks offered IOPS and the
//! response time is essentially pure service time. Past the knee, achieved IOPS
//! flattens at the device's capacity and the *queueing delay* component grows
//! without bound — the classic open-queueing-system hockey stick, now visible in
//! the simulator.
//!
//! Device state evolves identically at every rate (the engine only overlays
//! timing), so every row replays the exact same device work.
//!
//! ```text
//! cargo run --release --example offered_load_curve
//! ```

use std::error::Error;

use vflash::ftl::{ConventionalFtl, FtlConfig};
use vflash::nand::NandDevice;
use vflash::sim::experiments::{ExperimentScale, Workload, RATE_SCALES};
use vflash::sim::{RunOptions, WorkloadDriver};

fn main() -> Result<(), Box<dyn Error>> {
    let scale = ExperimentScale {
        requests: 20_000,
        working_set_bytes: 48 * 1024 * 1024,
        chips: 8,
        ..ExperimentScale::quick()
    };
    let trace = Workload::WebSqlServer.trace(&scale);
    let config = scale.device_config(16 * 1024, 2.0);
    println!(
        "web-sql-server workload: {} requests, recorded rate {:.0} req/s, on {} chips x {} blocks\n",
        trace.len(),
        trace.offered_iops(),
        config.chips(),
        config.blocks_per_chip(),
    );

    println!(" rate     offered    achieved   qdelay mean      p99     service p50");
    for &rate_scale in &RATE_SCALES {
        let ftl = ConventionalFtl::new(NandDevice::new(config.clone()), FtlConfig::default())?;
        let summary = WorkloadDriver::open_loop(RunOptions::default(), rate_scale)
            .run(ftl, &trace)?;
        println!(
            "{:>4}x {:>11.0} {:>11.0}   {:>11} {:>8} {:>11}",
            rate_scale,
            summary.offered_iops(),
            summary.request_iops(),
            summary.queue_delay.mean.to_string(),
            summary.queue_delay.p99.to_string(),
            summary.service_time.p50.to_string(),
        );
    }
    println!(
        "\nBelow the knee achieved tracks offered and queue delay stays flat; past it\n\
         achieved pins at the device's saturation throughput and delay takes over the\n\
         response time. Service time never moves — load changes *waiting*, not work."
    );
    Ok(())
}
