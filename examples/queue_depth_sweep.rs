//! Queue-depth sweep: drive the same trace through the submission/completion API
//! at increasing queue depths and watch IOPS climb while tail latency pays for it.
//!
//! Device state evolves identically at every depth — the event-driven
//! [`QueuedReplayer`](vflash::sim::QueuedReplayer) only overlays *timing* — so the
//! differences below are pure queuing effects: requests landing on distinct idle
//! chips overlap, requests hitting the same chip queue behind each other.
//!
//! ```text
//! cargo run --release --example queue_depth_sweep
//! ```

use std::error::Error;

use vflash::ftl::{ConventionalFtl, FtlConfig};
use vflash::nand::NandDevice;
use vflash::sim::experiments::{ExperimentScale, Workload, QUEUE_DEPTHS};
use vflash::sim::{QueuedReplayer, RunOptions};

fn main() -> Result<(), Box<dyn Error>> {
    let scale = ExperimentScale {
        requests: 20_000,
        working_set_bytes: 48 * 1024 * 1024,
        chips: 8,
        ..ExperimentScale::quick()
    };
    let trace = Workload::MediaServer.trace(&scale);
    let stats = trace.stats();
    let config = scale.device_config(16 * 1024, 2.0);
    println!(
        "media-server workload: {} requests, {:.0}% reads, on {} chips x {} blocks\n",
        trace.len(),
        stats.read_ratio() * 100.0,
        config.chips(),
        config.blocks_per_chip(),
    );

    println!("  qd      iops     speedup   read p50      p99       max");
    let mut qd1_iops = None;
    for &depth in &QUEUE_DEPTHS {
        let ftl = ConventionalFtl::new(NandDevice::new(config.clone()), FtlConfig::default())?;
        let summary = QueuedReplayer::new(RunOptions::default(), depth).run(ftl, &trace)?;
        let iops = summary.request_iops();
        let baseline = *qd1_iops.get_or_insert(iops);
        println!(
            "{:>4} {:>9.0} {:>9.2}x   {:>9} {:>9} {:>9}",
            depth,
            iops,
            iops / baseline,
            summary.read_latency.p50.to_string(),
            summary.read_latency.p99.to_string(),
            summary.read_latency.max.to_string(),
        );
    }
    println!(
        "\nIOPS grows with depth until every chip is saturated; p99 grows with depth\n\
         because requests serialised on a busy chip wait longer — the classic\n\
         throughput/tail-latency trade-off, now visible in the simulator."
    );
    Ok(())
}
