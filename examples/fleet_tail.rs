//! Fan-out tail amplification across stripe widths.
//!
//! ```text
//! cargo run --release --example fleet_tail
//! ```
//!
//! Stripes one web/SQL-server keyspace over fleets of 1, 2, 4 and 8 identical
//! devices and replays the *same* open-loop request stream (one seed, fixed
//! 1000 IOPS offered load) against each width on both FTLs. A striped request
//! completes at the **max** of its per-device stripes, so while the per-stripe
//! latency distribution keeps shrinking with the width, the per-request
//! fan-out p99.9 shrinks far more slowly — their ratio, the fan-out tail
//! amplification, grows monotonically with the stripe width. This is the
//! classic tail-at-scale effect the host tier exists to measure.
//!
//! The load matters: it is chosen so even the single device keeps up
//! (achieved = offered in every row). A saturated fleet would report
//! amplification 1.0 — its tail is shared backlog, identical on every stripe —
//! and a near-idle one hits the latency model's discrete floor.

use std::error::Error;

use vflash::fleet::{Fleet, FleetConfig, FleetDriver};
use vflash::ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig, FtlError};
use vflash::nand::{NandConfig, NandDevice};
use vflash::ppb::{PpbConfig, PpbFtl};
use vflash::sim::experiments::{ExperimentScale, Workload, FLEET_SIZES};
use vflash::sim::RunOptions;
use vflash::trace::synthetic::ArrivalModel;
use vflash::trace::Trace;

const OFFERED_IOPS: f64 = 1_000.0;

fn device_config(scale: &ExperimentScale) -> NandConfig {
    scale.device_config(8 * 1024, 4.0)
}

fn run_width<F: FlashTranslationLayer>(
    lanes: Vec<F>,
    trace: &Trace,
) -> Result<vflash::fleet::FleetSummary, FtlError> {
    let fleet = Fleet::new(lanes, FleetConfig::default());
    FleetDriver::open_loop(RunOptions::default(), 1.0).run(fleet, trace)
}

fn main() -> Result<(), Box<dyn Error>> {
    let scale = ExperimentScale { requests: 20_000, chips: 4, ..ExperimentScale::quick() };
    // One seed, one arrival process: every width replays this exact stream.
    let trace = Workload::WebSqlServer
        .trace_with_arrival(&scale, ArrivalModel::MeanRate { iops: OFFERED_IOPS });
    let config = device_config(&scale);

    println!(
        "fleet_tail: web-sql-server, {} requests, open-loop {:.0} IOPS offered, \
         cache off, seed {}",
        scale.requests, OFFERED_IOPS, scale.seed
    );
    println!(
        "{:<12} {:>5}   {:>8}   fanout p50/p99/p99.9 (us)   stripe p99.9 (us)   tail-amp",
        "ftl", "width", "IOPS"
    );
    for &width in &FLEET_SIZES {
        let conventional: Vec<ConventionalFtl> = (0..width)
            .map(|_| ConventionalFtl::new(NandDevice::new(config.clone()), FtlConfig::default()))
            .collect::<Result<_, _>>()?;
        let ppb: Vec<PpbFtl> = (0..width)
            .map(|_| PpbFtl::new(NandDevice::new(config.clone()), PpbConfig::default()))
            .collect::<Result<_, _>>()?;
        for summary in [run_width(conventional, &trace)?, run_width(ppb, &trace)?] {
            println!(
                "{:<12} {:>5}   {:>8.0}   {:>8.0}/{:>7.0}/{:>8.0}   {:>17.0}   {:>7.2}x",
                summary.ftl,
                summary.width,
                summary.request_iops(),
                summary.fanout_read_latency.p50.as_micros_f64(),
                summary.fanout_read_latency.p99.as_micros_f64(),
                summary.fanout_read_latency.p999.as_micros_f64(),
                summary.stripe_read_latency.p999.as_micros_f64(),
                summary.read_tail_amplification(),
            );
        }
    }
    println!();
    println!(
        "Every row serves its full offered load; down the width axis the per-stripe\n\
         p99.9 falls fast while the per-request (max-over-stripes) p99.9 falls\n\
         slowly, so the tail-amp ratio grows with the width. Identical seeds make\n\
         every number above reproducible bit for bit."
    );
    Ok(())
}
