//! The host-tier contract of the fleet driver.
//!
//! A 1-wide [`Fleet`] with the cache disabled and a single tenant is the
//! single-device engine wearing a different coat: the stripe map is the
//! identity, every request's stripe chain is the engine's dependent chain, and
//! the fleet completion calendar sees exactly the instants the engine's
//! calendar would. This suite proves the claim the same way
//! `tests/engine_equivalence.rs` proves the replayer refactor — **bit-for-bit**
//! — against the engine itself:
//!
//! * the lane's [`RunSummary`] equals a [`WorkloadDriver`] run of the same
//!   trace field for field (the whole struct, not a projection),
//! * the device ends in the identical state (stats, modification clock, every
//!   chip, FTL metrics),
//! * on both FTLs, under closed loop (depth 1 and 8) and open loop (rate 1.0
//!   and 2.0), with and without prefill, and on random traces × random
//!   disciplines via proptest.

use proptest::prelude::*;

use vflash::fleet::{Fleet, FleetConfig, FleetDriver};
use vflash::ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig};
use vflash::nand::{ChipId, NandConfig, NandDevice};
use vflash::ppb::{PpbConfig, PpbFtl};
use vflash::sim::{ArrivalDiscipline, RunOptions, WorkloadDriver};
use vflash::trace::synthetic::{self, SkewedParams, SyntheticConfig};
use vflash::trace::{IoOp, IoRequest, Trace};

fn device(chips: usize) -> NandDevice {
    NandDevice::new(
        NandConfig::builder()
            .chips(chips)
            .blocks_per_chip(48)
            .pages_per_block(16)
            .page_size_bytes(4096)
            .speed_ratio(4.0)
            .build()
            .unwrap(),
    )
}

fn conventional(chips: usize) -> ConventionalFtl {
    ConventionalFtl::new(device(chips), FtlConfig::default()).unwrap()
}

fn ppb(chips: usize) -> PpbFtl {
    PpbFtl::new(device(chips), PpbConfig::default()).unwrap()
}

/// The disciplines the ISSUE pins: closed loop at depth 1 (the serial path,
/// op tracing off) and depth 8 (the event-calendar path), open loop at the
/// recorded rate and at 2x.
fn disciplines() -> [ArrivalDiscipline; 4] {
    [
        ArrivalDiscipline::ClosedLoop { queue_depth: 1 },
        ArrivalDiscipline::ClosedLoop { queue_depth: 8 },
        ArrivalDiscipline::OpenLoop { rate_scale: 1.0 },
        ArrivalDiscipline::OpenLoop { rate_scale: 2.0 },
    ]
}

/// Runs the same trace through the engine and through a width-1 cache-off
/// fleet, then asserts the complete contract: lane summary == engine summary
/// (full struct equality), fleet roll-ups consistent with the lane, and the
/// two devices in identical end states.
fn assert_fleet_of_one_reproduces_engine<F: FlashTranslationLayer>(
    make: impl Fn() -> F,
    trace: &Trace,
    options: RunOptions,
    discipline: ArrivalDiscipline,
    context: &str,
) {
    let mut single = make();
    let engine = WorkloadDriver::new(options, discipline).run_mut(&mut single, trace).unwrap();

    let mut fleet = Fleet::new(vec![make()], FleetConfig::default());
    let summary = FleetDriver::new(options, discipline).run_mut(&mut fleet, trace).unwrap();

    // The lane summary is the engine summary, every field.
    assert_eq!(summary.lanes.len(), 1, "{context}: one lane");
    assert_eq!(summary.lanes[0], engine, "{context}: lane RunSummary");

    // The fleet-level roll-ups collapse onto the lane at width 1.
    assert_eq!(summary.width, 1, "{context}: width");
    assert_eq!(summary.host_requests, engine.host_requests, "{context}: host_requests");
    assert_eq!(summary.host_elapsed, engine.host_elapsed, "{context}: host_elapsed");
    assert_eq!(summary.queue_depth, engine.queue_depth, "{context}: queue_depth");
    assert_eq!(summary.mode, engine.mode, "{context}: mode");
    assert_eq!(summary.offered_duration, engine.offered_duration, "{context}: offered_duration");
    assert_eq!(
        summary.peak_queue_depth, engine.peak_queue_depth,
        "{context}: peak_queue_depth"
    );
    assert_eq!(summary.busy_arrivals, engine.busy_arrivals, "{context}: busy_arrivals");
    assert_eq!(
        summary.fanout_read_latency, engine.read_latency,
        "{context}: fan-out read percentiles"
    );
    assert_eq!(
        summary.fanout_write_latency, engine.write_latency,
        "{context}: fan-out write percentiles"
    );
    // At width 1 a request has exactly one stripe, so the two distributions
    // are the same distribution.
    assert_eq!(
        summary.stripe_read_latency, summary.fanout_read_latency,
        "{context}: stripe == fan-out at width 1"
    );
    assert_eq!(
        summary.stripe_write_latency, summary.fanout_write_latency,
        "{context}: stripe == fan-out at width 1"
    );
    // Cache off, single tenant: no cache traffic, one tenant owning everything.
    assert_eq!(summary.cache, Default::default(), "{context}: cache stats stay zero");
    assert_eq!(summary.tenants.len(), 1, "{context}: one tenant");
    assert_eq!(summary.tenants[0].requests, engine.host_requests, "{context}: tenant share");

    // Device-state identity, the same checks the engine-equivalence suite runs.
    let lane = &fleet.lanes()[0];
    let (a, b) = (single.device(), lane.device());
    assert_eq!(a.stats(), b.stats(), "{context}: device stats differ");
    assert_eq!(a.mod_seq(), b.mod_seq(), "{context}: modification clocks differ");
    for chip in 0..a.config().chips() {
        assert_eq!(
            a.chip(ChipId(chip)).unwrap(),
            b.chip(ChipId(chip)).unwrap(),
            "{context}: chip {chip} state differs"
        );
    }
    assert_eq!(single.metrics(), lane.metrics(), "{context}: FTL metrics differ");
}

fn synthetic_traces() -> Vec<Trace> {
    let config = SyntheticConfig {
        requests: 1_000,
        seed: 17,
        working_set_bytes: 2 * 1024 * 1024,
        ..Default::default()
    };
    vec![
        synthetic::media_server(config),
        synthetic::web_sql_server(config),
        synthetic::skewed(
            SyntheticConfig { seed: 43, ..config },
            SkewedParams { zipf_exponent: 1.1, read_ratio: 0.8, ..SkewedParams::default() },
        ),
    ]
}

#[test]
fn fleet_of_one_reproduces_the_engine_on_conventional() {
    for trace in synthetic_traces() {
        for chips in [1usize, 4] {
            for discipline in disciplines() {
                let context = format!(
                    "conventional, {} on {chips} chip(s), {discipline:?}",
                    trace.name()
                );
                assert_fleet_of_one_reproduces_engine(
                    || conventional(chips),
                    &trace,
                    RunOptions::default(),
                    discipline,
                    &context,
                );
            }
        }
    }
}

#[test]
fn fleet_of_one_reproduces_the_engine_on_ppb() {
    for trace in synthetic_traces() {
        for discipline in disciplines() {
            let context = format!("ppb, {} on 4 chips, {discipline:?}", trace.name());
            assert_fleet_of_one_reproduces_engine(
                || ppb(4),
                &trace,
                RunOptions::default(),
                discipline,
                &context,
            );
        }
    }
}

#[test]
fn fleet_of_one_reproduces_the_engine_without_prefill() {
    // Unmapped-read skipping is a separate code path in both drivers; make
    // sure the fleet takes the engine's branch, request for request.
    let options = RunOptions { prefill: false, ..RunOptions::default() };
    let trace = synthetic::skewed(
        SyntheticConfig {
            requests: 600,
            seed: 5,
            working_set_bytes: 2 * 1024 * 1024,
            ..Default::default()
        },
        SkewedParams { read_ratio: 0.7, ..SkewedParams::default() },
    );
    for discipline in disciplines() {
        assert_fleet_of_one_reproduces_engine(
            || conventional(2),
            &trace,
            options,
            discipline,
            &format!("conventional, no prefill, {discipline:?}"),
        );
        assert_fleet_of_one_reproduces_engine(
            || ppb(2),
            &trace,
            options,
            discipline,
            &format!("ppb, no prefill, {discipline:?}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random traces × random chips × random disciplines keep the width-1
    /// bit-identity contract on both FTLs.
    #[test]
    fn fleet_of_one_equivalence_holds_on_random_configs(
        ops in proptest::collection::vec(
            (0u8..2, 0u64..512, 1u32..40_000),
            1..100,
        ),
        chips in 1usize..5,
        depth_or_rate in 0usize..4,
        use_ppb in any::<bool>(),
    ) {
        let requests: Vec<IoRequest> = ops
            .iter()
            .enumerate()
            .map(|(i, &(op, page, len))| {
                let op = if op == 0 { IoOp::Read } else { IoOp::Write };
                IoRequest::new(i as u64 * 1_000, op, page * 4096, len)
            })
            .collect();
        let trace = Trace::new("random", requests);
        let discipline = disciplines()[depth_or_rate];
        let context =
            format!("random, {chips} chip(s), ppb={use_ppb}, {discipline:?}");
        if use_ppb {
            assert_fleet_of_one_reproduces_engine(
                || ppb(chips),
                &trace,
                RunOptions::default(),
                discipline,
                &context,
            );
        } else {
            assert_fleet_of_one_reproduces_engine(
                || conventional(chips),
                &trace,
                RunOptions::default(),
                discipline,
                &context,
            );
        }
    }
}
