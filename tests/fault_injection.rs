//! End-of-life integration: a device with aggressive program/erase failure
//! rates is written until its spare capacity is gone, and both FTLs must
//! degrade gracefully — remapping failed programs and rescuing resident data
//! block by block, then refusing writes (read-only) instead of panicking,
//! while reads of surviving data keep completing.

use vflash::ftl::{
    ConventionalFtl, FlashTranslationLayer, FtlConfig, FtlError, FtlMetrics, Lpn,
};
use vflash::nand::{FaultConfig, NandConfig, NandDevice, Nanos};
use vflash::ppb::{PpbConfig, PpbFtl};
use vflash::sim::RunSummary;

/// Distinct logical pages the write loop cycles over — well under the device's
/// fresh capacity, so the transition to read-only is caused by bad-block
/// growth, not by the working set outgrowing the device.
const LPNS: u64 = 256;

/// Backstop so a regression that stops blocks from dying fails the test
/// instead of hanging it.
const WRITE_CAP: u64 = 1_000_000;

fn failing_config(seed: u64) -> NandConfig {
    let faults = FaultConfig {
        program_fail_base: 0.02,
        erase_fail_base: 0.01,
        ..FaultConfig::enabled(seed)
    };
    NandConfig::builder()
        .chips(2)
        .blocks_per_chip(24)
        .pages_per_block(16)
        .page_size_bytes(4096)
        .speed_ratio(2.0)
        .faults(faults)
        .build()
        .expect("the failing end-of-life configuration is valid")
}

/// Writes round-robin until the FTL reports read-only; returns the number of
/// writes it absorbed. Any other error is a graceful-degradation bug.
fn drive_to_read_only<F: FlashTranslationLayer>(ftl: &mut F) -> u64 {
    let mut writes = 0u64;
    for index in 0..WRITE_CAP {
        match ftl.write(Lpn(index % LPNS), 4096) {
            Ok(_) => writes += 1,
            Err(FtlError::ReadOnly) => return writes,
            Err(err) => panic!("unexpected error before read-only: {err}"),
        }
    }
    panic!("the failing device never reached read-only within {WRITE_CAP} writes");
}

fn assert_graceful_end_of_life<F: FlashTranslationLayer>(mut ftl: F, label: &str) {
    let writes = drive_to_read_only(&mut ftl);
    assert!(writes > LPNS, "{label}: the fresh device must absorb at least one full pass");
    assert!(ftl.is_read_only(), "{label}: the transition must be reported");

    // Read-only is sticky: writes keep failing, reads keep working.
    assert!(
        matches!(ftl.write(Lpn(0), 4096), Err(FtlError::ReadOnly)),
        "{label}: writes after the transition must keep failing with ReadOnly"
    );
    let latency = ftl.read(Lpn(0)).expect("surviving data stays readable");
    assert!(latency > Nanos::ZERO, "{label}: reads still cost device time");

    // The reliability counters flow into the run summary unchanged.
    let summary =
        RunSummary::from_metrics_delta(label, "end-of-life", &FtlMetrics::new(), ftl.metrics());
    assert!(summary.bad_blocks_grown > 0, "{label}: read-only requires retired blocks");
    assert!(summary.remapped_writes > 0, "{label}: program failures must have been remapped");
    assert!(
        summary.time_to_read_only > Nanos::ZERO,
        "{label}: the transition time must be recorded"
    );
    let text = summary.to_string();
    assert!(text.contains("read-only at"), "{label}: summary must report the transition: {text}");
    assert!(text.contains("bad blocks"), "{label}: summary must report bad blocks: {text}");
}

#[test]
fn conventional_ftl_degrades_to_read_only_gracefully() {
    let ftl = ConventionalFtl::new(NandDevice::new(failing_config(7)), FtlConfig::default())
        .expect("construction");
    assert_graceful_end_of_life(ftl, "conventional");
}

#[test]
fn ppb_ftl_degrades_to_read_only_gracefully() {
    let ftl =
        PpbFtl::new(NandDevice::new(failing_config(7)), PpbConfig::default()).expect("construction");
    assert_graceful_end_of_life(ftl, "ppb");
}

#[test]
fn end_of_life_runs_are_bit_reproducible() {
    let run = || {
        let mut ftl =
            ConventionalFtl::new(NandDevice::new(failing_config(21)), FtlConfig::default())
                .expect("construction");
        let writes = drive_to_read_only(&mut ftl);
        let summary = RunSummary::from_metrics_delta(
            "conventional",
            "end-of-life",
            &FtlMetrics::new(),
            ftl.metrics(),
        );
        (writes, summary)
    };
    let (writes_a, summary_a) = run();
    let (writes_b, summary_b) = run();
    assert_eq!(writes_a, writes_b, "the fault streams are seeded: same writes every run");
    assert_eq!(summary_a, summary_b, "the whole summary must reproduce bit-for-bit");
}
