//! The refactor contract of the unified workload-driver engine.
//!
//! The serial `Replayer` and the event-driven `QueuedReplayer` used to be two
//! separate drive loops; both are now thin wrappers over `WorkloadDriver`. This
//! suite keeps verbatim **reference implementations of the pre-refactor loops**
//! and proves the engine reproduces them bit-for-bit:
//!
//! * `ClosedLoop { queue_depth: 1 }` ≡ the old serial replayer — same
//!   `RunSummary` (every pre-refactor field) and same device state,
//! * `ClosedLoop { queue_depth: N }` ≡ the old queued replayer, same guarantees,
//! * and the new discipline behaves sanely at its limits: `OpenLoop` with
//!   `rate_scale → ∞` converges exactly to closed-loop saturation throughput,
//!   and at `rate_scale = 1` it reports queueing delay and service time
//!   separately with achieved IOPS ≤ offered IOPS.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use vflash::ftl::{
    ConventionalFtl, FlashTranslationLayer, FtlConfig, FtlError, IoRequest as FtlRequest, Lpn,
};
use vflash::nand::{ChipId, NandConfig, NandDevice, Nanos};
use vflash::ppb::{PpbConfig, PpbFtl};
use vflash::sim::{
    LatencyHistogram, QueuedReplayer, Replayer, RunOptions, RunSummary, WorkloadDriver,
};
use vflash::trace::synthetic::{self, SkewedParams, SyntheticConfig};
use vflash::trace::{IoOp, Trace};

fn device(chips: usize) -> NandDevice {
    NandDevice::new(
        NandConfig::builder()
            .chips(chips)
            .blocks_per_chip(48)
            .pages_per_block(16)
            .page_size_bytes(4096)
            .speed_ratio(4.0)
            .build()
            .unwrap(),
    )
}

fn conventional(chips: usize) -> ConventionalFtl {
    ConventionalFtl::new(device(chips), FtlConfig::default()).unwrap()
}

fn ppb(chips: usize) -> PpbFtl {
    PpbFtl::new(device(chips), PpbConfig::default()).unwrap()
}

/// The pre-refactor prefill pass (identical semantics to the engine's: every
/// touched page written once in ascending order, skipped for read-free traces).
fn reference_prefill<F: FlashTranslationLayer + ?Sized>(
    ftl: &mut F,
    trace: &Trace,
    options: &RunOptions,
) -> Result<(), FtlError> {
    if !trace.iter().any(|request| request.op == IoOp::Read) {
        return Ok(());
    }
    let page_size = ftl.device().config().page_size_bytes();
    let logical_pages = ftl.logical_pages();
    let mut touched: Vec<bool> = vec![false; logical_pages as usize];
    for request in trace {
        for page in request.logical_pages(page_size) {
            touched[(page % logical_pages) as usize] = true;
        }
    }
    for (page, touched) in touched.iter().enumerate() {
        if *touched {
            ftl.write(Lpn(page as u64), options.prefill_request_bytes)?;
        }
    }
    Ok(())
}

fn chip_busy_times<F: FlashTranslationLayer + ?Sized>(ftl: &F) -> Vec<Nanos> {
    let device = ftl.device();
    (0..device.config().chips())
        .map(|chip| device.chip_busy_time(ChipId(chip)).unwrap())
        .collect()
}

fn makespan_delta<F: FlashTranslationLayer + ?Sized>(ftl: &F, start: &[Nanos]) -> Nanos {
    chip_busy_times(ftl)
        .iter()
        .zip(start)
        .map(|(&end, &begin)| end.saturating_sub(begin))
        .max()
        .unwrap_or(Nanos::ZERO)
}

/// A verbatim re-implementation of the pre-refactor **serial** replayer
/// (`Replayer::run_mut` as of the queue-depth PR): scalar `read`/`write` calls,
/// no op tracing, per-request latency = serial sum of page latencies.
fn reference_serial<F: FlashTranslationLayer + ?Sized>(
    ftl: &mut F,
    trace: &Trace,
    options: RunOptions,
) -> Result<RunSummary, FtlError> {
    let page_size = ftl.device().config().page_size_bytes();
    let logical_pages = ftl.logical_pages();
    if options.prefill {
        reference_prefill(ftl, trace, &options)?;
    }
    let start = *ftl.metrics();
    let busy_start = chip_busy_times(ftl);
    let mut read_latencies = LatencyHistogram::new();
    let mut write_latencies = LatencyHistogram::new();
    let mut elapsed = Nanos::ZERO;
    let mut requests = 0u64;
    for request in trace {
        let mut latency = Nanos::ZERO;
        for page in request.logical_pages(page_size) {
            let lpn = Lpn(page % logical_pages);
            match request.op {
                IoOp::Write => latency += ftl.write(lpn, request.length)?,
                IoOp::Read => match ftl.read(lpn) {
                    Ok(page_latency) => latency += page_latency,
                    Err(FtlError::UnmappedRead { .. }) if !options.prefill => {}
                    Err(err) => return Err(err),
                },
            }
        }
        match request.op {
            IoOp::Read => read_latencies.record(latency),
            IoOp::Write => write_latencies.record(latency),
        }
        elapsed += latency;
        requests += 1;
    }
    let end = *ftl.metrics();
    let mut summary = RunSummary::from_metrics_delta(ftl.name(), trace.name(), &start, &end);
    summary.device_makespan = makespan_delta(ftl, &busy_start);
    summary.queue_depth = 1;
    summary.host_requests = requests;
    summary.host_elapsed = elapsed;
    summary.read_latency = read_latencies.percentiles();
    summary.write_latency = write_latencies.percentiles();
    Ok(summary)
}

/// A verbatim re-implementation of the pre-refactor **queued** replayer
/// (`QueuedReplayer::run_mut`): op tracing on, per-chip ready clocks, a binary
/// heap of in-flight completions handing out queue slots.
fn reference_queued<F: FlashTranslationLayer + ?Sized>(
    ftl: &mut F,
    trace: &Trace,
    options: RunOptions,
    queue_depth: usize,
) -> Result<RunSummary, FtlError> {
    let page_size = ftl.device().config().page_size_bytes();
    let logical_pages = ftl.logical_pages();
    if options.prefill {
        reference_prefill(ftl, trace, &options)?;
    }
    ftl.device_mut().set_op_tracing(true);
    let start = *ftl.metrics();
    let busy_start = chip_busy_times(ftl);
    let chips = ftl.device().config().chips();
    let mut chip_ready = vec![Nanos::ZERO; chips];
    let mut in_flight: BinaryHeap<Reverse<Nanos>> = BinaryHeap::with_capacity(queue_depth);
    let mut read_latencies = LatencyHistogram::new();
    let mut write_latencies = LatencyHistogram::new();
    let mut clock = Nanos::ZERO;
    let mut last_completion = Nanos::ZERO;
    let mut requests = 0u64;
    for request in trace {
        if in_flight.len() == queue_depth {
            let Reverse(freed) = in_flight.pop().unwrap();
            if freed > clock {
                clock = freed;
            }
        }
        let issue = clock;
        let mut now = issue;
        for page in request.logical_pages(page_size) {
            let lpn = Lpn(page % logical_pages);
            let completion = match request.op {
                IoOp::Write => ftl.submit(FtlRequest::write(lpn, request.length))?,
                IoOp::Read => match ftl.submit(FtlRequest::read(lpn)) {
                    Ok(completion) => completion,
                    Err(FtlError::UnmappedRead { .. }) if !options.prefill => continue,
                    Err(err) => return Err(err),
                },
            };
            // The pre-refactor loop consumed per-request `Vec<OpRecord>`s; the
            // FTL API now hands out spans into the device's op arena, so the
            // reference resolves the span and releases the arena — the timing
            // arithmetic is untouched.
            for op in ftl.device().ops(completion.ops) {
                let ready = chip_ready[op.chip.0];
                let op_start = if ready > now { ready } else { now };
                now = op_start + op.latency;
                chip_ready[op.chip.0] = now;
            }
            ftl.device_mut().clear_ops();
        }
        let latency = now.saturating_sub(issue);
        match request.op {
            IoOp::Read => read_latencies.record(latency),
            IoOp::Write => write_latencies.record(latency),
        }
        if now > last_completion {
            last_completion = now;
        }
        in_flight.push(Reverse(now));
        requests += 1;
    }
    let end = *ftl.metrics();
    ftl.device_mut().set_op_tracing(false);
    let mut summary = RunSummary::from_metrics_delta(ftl.name(), trace.name(), &start, &end);
    summary.device_makespan = makespan_delta(ftl, &busy_start);
    summary.queue_depth = queue_depth;
    summary.host_requests = requests;
    summary.host_elapsed = last_completion;
    summary.read_latency = read_latencies.percentiles();
    summary.write_latency = write_latencies.percentiles();
    Ok(summary)
}

/// Asserts the pre-refactor summary fields and the complete device state match.
/// (The engine adds new fields — queue delay, service time, mode — that the
/// references never produced; they are checked by the engine's own tests.)
fn assert_reproduces_reference(
    reference: (&RunSummary, &dyn FlashTranslationLayer),
    engine: (&RunSummary, &dyn FlashTranslationLayer),
    context: &str,
) {
    let (r, e) = (reference.0, engine.0);
    assert_eq!(r.ftl, e.ftl, "{context}: ftl name");
    assert_eq!(r.trace, e.trace, "{context}: trace name");
    assert_eq!(r.host_reads, e.host_reads, "{context}: host_reads");
    assert_eq!(r.host_writes, e.host_writes, "{context}: host_writes");
    assert_eq!(r.read_time, e.read_time, "{context}: read_time");
    assert_eq!(r.write_time, e.write_time, "{context}: write_time");
    assert_eq!(r.mean_read_latency, e.mean_read_latency, "{context}: mean_read_latency");
    assert_eq!(r.mean_write_latency, e.mean_write_latency, "{context}: mean_write_latency");
    assert_eq!(r.erased_blocks, e.erased_blocks, "{context}: erased_blocks");
    assert_eq!(r.gc_copied_pages, e.gc_copied_pages, "{context}: gc_copied_pages");
    assert_eq!(r.migrated_pages, e.migrated_pages, "{context}: migrated_pages");
    assert_eq!(r.write_amplification, e.write_amplification, "{context}: WAF");
    assert_eq!(r.device_makespan, e.device_makespan, "{context}: device_makespan");
    assert_eq!(r.queue_depth, e.queue_depth, "{context}: queue_depth");
    assert_eq!(r.host_requests, e.host_requests, "{context}: host_requests");
    assert_eq!(r.host_elapsed, e.host_elapsed, "{context}: host_elapsed");
    assert_eq!(r.read_latency, e.read_latency, "{context}: read percentiles");
    assert_eq!(r.write_latency, e.write_latency, "{context}: write percentiles");

    let (a, b) = (reference.1.device(), engine.1.device());
    assert_eq!(a.stats(), b.stats(), "{context}: device stats differ");
    assert_eq!(a.mod_seq(), b.mod_seq(), "{context}: modification clocks differ");
    for chip in 0..a.config().chips() {
        assert_eq!(
            a.chip(ChipId(chip)).unwrap(),
            b.chip(ChipId(chip)).unwrap(),
            "{context}: chip {chip} state differs"
        );
    }
    assert_eq!(reference.1.metrics(), engine.1.metrics(), "{context}: FTL metrics differ");
}

fn synthetic_traces() -> Vec<Trace> {
    let config = SyntheticConfig {
        requests: 1_500,
        seed: 7,
        working_set_bytes: 2 * 1024 * 1024,
        ..Default::default()
    };
    vec![
        synthetic::media_server(config),
        synthetic::web_sql_server(config),
        synthetic::skewed(config, SkewedParams::default()),
        synthetic::skewed(
            SyntheticConfig { seed: 91, ..config },
            SkewedParams { zipf_exponent: 1.2, read_ratio: 0.85, ..SkewedParams::default() },
        ),
    ]
}

#[test]
fn closed_loop_depth_1_reproduces_the_pre_refactor_serial_replayer() {
    for trace in synthetic_traces() {
        for chips in [1usize, 4] {
            let context = format!("serial, {} on {chips} chip(s)", trace.name());
            let mut reference_ftl = conventional(chips);
            let mut engine_ftl = conventional(chips);
            let reference =
                reference_serial(&mut reference_ftl, &trace, RunOptions::default()).unwrap();
            let engine = Replayer::new(RunOptions::default())
                .run_mut(&mut engine_ftl, &trace)
                .unwrap();
            assert_reproduces_reference(
                (&reference, &reference_ftl),
                (&engine, &engine_ftl),
                &format!("conventional, {context}"),
            );

            let mut reference_ppb = ppb(chips);
            let mut engine_ppb = ppb(chips);
            let reference =
                reference_serial(&mut reference_ppb, &trace, RunOptions::default()).unwrap();
            let engine = Replayer::new(RunOptions::default())
                .run_mut(&mut engine_ppb, &trace)
                .unwrap();
            assert_reproduces_reference(
                (&reference, &reference_ppb),
                (&engine, &engine_ppb),
                &format!("ppb, {context}"),
            );
        }
    }
}

#[test]
fn closed_loop_depth_n_reproduces_the_pre_refactor_queued_replayer() {
    for trace in synthetic_traces() {
        for depth in [2usize, 8, 64] {
            let context = format!("queued QD{depth}, {} on 4 chips", trace.name());
            let mut reference_ftl = conventional(4);
            let mut engine_ftl = conventional(4);
            let reference =
                reference_queued(&mut reference_ftl, &trace, RunOptions::default(), depth)
                    .unwrap();
            let engine = QueuedReplayer::new(RunOptions::default(), depth)
                .run_mut(&mut engine_ftl, &trace)
                .unwrap();
            assert_reproduces_reference(
                (&reference, &reference_ftl),
                (&engine, &engine_ftl),
                &format!("conventional, {context}"),
            );

            let mut reference_ppb = ppb(4);
            let mut engine_ppb = ppb(4);
            let reference =
                reference_queued(&mut reference_ppb, &trace, RunOptions::default(), depth)
                    .unwrap();
            let engine = QueuedReplayer::new(RunOptions::default(), depth)
                .run_mut(&mut engine_ppb, &trace)
                .unwrap();
            assert_reproduces_reference(
                (&reference, &reference_ppb),
                (&engine, &engine_ppb),
                &format!("ppb, {context}"),
            );
        }
    }
}

#[test]
fn no_prefill_paths_also_reproduce_the_references() {
    // Unmapped-read skipping is a separate code path in the engine.
    let options = RunOptions { prefill: false, ..RunOptions::default() };
    let trace = synthetic::skewed(
        SyntheticConfig {
            requests: 800,
            seed: 3,
            working_set_bytes: 2 * 1024 * 1024,
            ..Default::default()
        },
        SkewedParams { read_ratio: 0.7, ..SkewedParams::default() },
    );
    let mut reference_ftl = conventional(2);
    let mut engine_ftl = conventional(2);
    let reference = reference_serial(&mut reference_ftl, &trace, options).unwrap();
    let engine = Replayer::new(options).run_mut(&mut engine_ftl, &trace).unwrap();
    assert_reproduces_reference(
        (&reference, &reference_ftl),
        (&engine, &engine_ftl),
        "serial, no prefill",
    );

    let mut reference_ftl = conventional(2);
    let mut engine_ftl = conventional(2);
    let reference = reference_queued(&mut reference_ftl, &trace, options, 8).unwrap();
    let engine = QueuedReplayer::new(options, 8).run_mut(&mut engine_ftl, &trace).unwrap();
    assert_reproduces_reference(
        (&reference, &reference_ftl),
        (&engine, &engine_ftl),
        "queued QD8, no prefill",
    );
}

/// The acceptance criterion for the open-loop limit: with arrivals compressed to
/// (effectively) time zero, nothing bounds the outstanding requests, so the
/// open-loop overlay packs work exactly like a closed loop whose depth covers the
/// whole trace — saturation throughput, identically.
#[test]
fn open_loop_at_infinite_rate_converges_to_closed_loop_saturation() {
    let trace = synthetic::skewed(
        SyntheticConfig {
            requests: 2_000,
            seed: 11,
            working_set_bytes: 4 * 1024 * 1024,
            ..Default::default()
        },
        SkewedParams { read_ratio: 0.9, ..SkewedParams::default() },
    );
    // Scale larger than any arrival timestamp: every scaled arrival rounds to 0.
    let infinite = 1e18;
    let open = WorkloadDriver::open_loop(RunOptions::default(), infinite)
        .run(conventional(8), &trace)
        .unwrap();
    let saturated = QueuedReplayer::new(RunOptions::default(), trace.len())
        .run(conventional(8), &trace)
        .unwrap();
    assert_eq!(
        open.host_elapsed, saturated.host_elapsed,
        "all-at-once arrivals must pack exactly like an unbounded closed loop"
    );
    assert_eq!(open.read_latency, saturated.read_latency);
    assert_eq!(open.device_makespan, saturated.device_makespan);
    assert!((open.request_iops() - saturated.request_iops()).abs() < 1e-6);
}

/// The acceptance criterion for the paper-facing open-loop run: at the trace's
/// recorded rate, queueing delay and service time are reported separately and the
/// device cannot serve more than it is offered.
#[test]
fn open_loop_at_unit_rate_reports_the_queueing_split() {
    let scale_cfg = SyntheticConfig {
        requests: 4_000,
        seed: 21,
        working_set_bytes: 8 * 1024 * 1024,
        ..Default::default()
    };
    let trace = synthetic::web_sql_server(scale_cfg);
    for chips in [1usize, 4] {
        let summary = WorkloadDriver::open_loop(RunOptions::default(), 1.0)
            .run(conventional(chips), &trace)
            .unwrap();
        assert!(summary.offered_iops() > 0.0, "{chips} chips: offered rate recorded");
        assert!(
            summary.request_iops() <= summary.offered_iops(),
            "{chips} chips: achieved {} exceeds offered {}",
            summary.request_iops(),
            summary.offered_iops()
        );
        assert!(summary.service_time.p50 > Nanos::ZERO, "{chips} chips: service reported");
        // Per request the decomposition is exact (response = delay + service), so
        // no response latency can exceed the worst delay plus the worst service.
        let bound = summary.queue_delay.max + summary.service_time.max;
        let worst_response = summary.read_latency.max.max(summary.write_latency.max);
        assert!(
            worst_response <= bound,
            "{chips} chips: response max {worst_response} escapes the split bound {bound}"
        );
        assert!(summary.host_elapsed >= summary.offered_duration);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random traces keep the serial bit-identity contract.
    #[test]
    fn serial_reference_equivalence_holds_on_random_traces(
        ops in proptest::collection::vec(
            (0u8..2, 0u64..512, 1u32..40_000),
            1..100,
        ),
        chips in 1usize..5,
    ) {
        let requests: Vec<vflash::trace::IoRequest> = ops
            .iter()
            .enumerate()
            .map(|(i, &(op, page, len))| {
                let op = if op == 0 { IoOp::Read } else { IoOp::Write };
                vflash::trace::IoRequest::new(i as u64 * 1_000, op, page * 4096, len)
            })
            .collect();
        let trace = Trace::new("random", requests);
        let mut reference_ftl = conventional(chips);
        let mut engine_ftl = conventional(chips);
        let reference = reference_serial(&mut reference_ftl, &trace, RunOptions::default()).unwrap();
        let engine = Replayer::new(RunOptions::default()).run_mut(&mut engine_ftl, &trace).unwrap();
        prop_assert_eq!(&reference.read_latency, &engine.read_latency);
        prop_assert_eq!(reference.host_elapsed, engine.host_elapsed);
        prop_assert_eq!(reference.host_requests, engine.host_requests);
        prop_assert_eq!(reference_ftl.device().stats(), engine_ftl.device().stats());
        for chip in 0..chips {
            prop_assert_eq!(
                reference_ftl.device().chip(ChipId(chip)).unwrap(),
                engine_ftl.device().chip(ChipId(chip)).unwrap()
            );
        }
    }

    /// Random traces × random queue depths keep the queued bit-identity
    /// contract: the one-heap event calendar reproduces the pre-refactor
    /// two-structure loop (slot heap + per-chip clocks) on arbitrary configs,
    /// including complete device state, for both FTLs.
    #[test]
    fn queued_reference_equivalence_holds_on_random_configs(
        ops in proptest::collection::vec(
            (0u8..2, 0u64..512, 1u32..40_000),
            1..100,
        ),
        chips in 1usize..5,
        depth in 2usize..32,
        use_ppb in any::<bool>(),
    ) {
        let requests: Vec<vflash::trace::IoRequest> = ops
            .iter()
            .enumerate()
            .map(|(i, &(op, page, len))| {
                let op = if op == 0 { IoOp::Read } else { IoOp::Write };
                vflash::trace::IoRequest::new(i as u64 * 1_000, op, page * 4096, len)
            })
            .collect();
        let trace = Trace::new("random", requests);
        let context = format!("random queued QD{depth}, {chips} chip(s), ppb={use_ppb}");
        if use_ppb {
            let mut reference_ftl = ppb(chips);
            let mut engine_ftl = ppb(chips);
            let reference =
                reference_queued(&mut reference_ftl, &trace, RunOptions::default(), depth)
                    .unwrap();
            let engine = QueuedReplayer::new(RunOptions::default(), depth)
                .run_mut(&mut engine_ftl, &trace)
                .unwrap();
            assert_reproduces_reference(
                (&reference, &reference_ftl),
                (&engine, &engine_ftl),
                &context,
            );
        } else {
            let mut reference_ftl = conventional(chips);
            let mut engine_ftl = conventional(chips);
            let reference =
                reference_queued(&mut reference_ftl, &trace, RunOptions::default(), depth)
                    .unwrap();
            let engine = QueuedReplayer::new(RunOptions::default(), depth)
                .run_mut(&mut engine_ftl, &trace)
                .unwrap();
            assert_reproduces_reference(
                (&reference, &reference_ftl),
                (&engine, &engine_ftl),
                &context,
            );
        }
    }

    /// At any rate scale, open loop preserves device-state evolution and the
    /// offered/achieved ordering; only timing shifts.
    #[test]
    fn open_loop_preserves_device_state_at_any_rate(
        rate_milli in 100u64..10_000, // 0.1x .. 10x
        seed in 0u64..500,
    ) {
        let rate_scale = rate_milli as f64 / 1000.0;
        let trace = synthetic::skewed(
            SyntheticConfig {
                requests: 300,
                seed,
                working_set_bytes: 1024 * 1024,
                ..Default::default()
            },
            SkewedParams::default(),
        );
        let closed = Replayer::new(RunOptions::default()).run(conventional(4), &trace).unwrap();
        let open = WorkloadDriver::open_loop(RunOptions::default(), rate_scale)
            .run(conventional(4), &trace)
            .unwrap();
        prop_assert_eq!(closed.host_reads, open.host_reads);
        prop_assert_eq!(closed.host_writes, open.host_writes);
        prop_assert_eq!(closed.read_time, open.read_time);
        prop_assert_eq!(closed.write_time, open.write_time);
        prop_assert_eq!(closed.erased_blocks, open.erased_blocks);
        prop_assert_eq!(closed.device_makespan, open.device_makespan);
        // The response decomposition never loses time, and the replay clock runs
        // at least as long as the arrival clock.
        prop_assert!(open.request_iops() <= open.offered_iops());
        prop_assert!(open.host_elapsed >= open.offered_duration);
        prop_assert!(open.host_elapsed >= open.device_makespan);
    }
}
