//! The queue-depth-1 bit-identity guarantee, and the queue-depth payoff.
//!
//! `QueuedReplayer` is a separate, event-driven implementation of trace replay; at
//! `queue_depth = 1` it must be **bit-identical** to the serial `Replayer` — the
//! same `RunSummary` (every field, percentiles included) and the same device state
//! (every chip's blocks, pools, clocks and wear) — for both FTLs, across the
//! synthetic paper workloads, Zipf-skewed traces and randomly generated ones.
//!
//! Separately, the acceptance criterion of the redesign: at `queue_depth = 64` on
//! an 8-chip device, a read-heavy trace achieves measurably higher IOPS than at
//! depth 1, while per-request p50/p95/p99 latencies are reported.

use proptest::prelude::*;

use vflash::ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig};
use vflash::nand::{ChipId, NandConfig, NandDevice};
use vflash::ppb::{PpbConfig, PpbFtl};
use vflash::sim::{QueuedReplayer, Replayer, RunOptions, RunSummary};
use vflash::trace::synthetic::{self, SkewedParams, SyntheticConfig};
use vflash::trace::{IoOp, IoRequest, Trace};

fn device(chips: usize) -> NandDevice {
    NandDevice::new(
        NandConfig::builder()
            .chips(chips)
            .blocks_per_chip(48)
            .pages_per_block(16)
            .page_size_bytes(4096)
            .speed_ratio(4.0)
            .build()
            .unwrap(),
    )
}

fn conventional(chips: usize) -> ConventionalFtl {
    ConventionalFtl::new(device(chips), FtlConfig::default()).unwrap()
}

fn ppb(chips: usize) -> PpbFtl {
    PpbFtl::new(device(chips), PpbConfig::default()).unwrap()
}

/// Asserts both summaries and the complete device state match.
fn assert_bit_identical(
    serial: (&RunSummary, &dyn FlashTranslationLayer),
    queued: (&RunSummary, &dyn FlashTranslationLayer),
    context: &str,
) {
    assert_eq!(serial.0, queued.0, "{context}: summaries differ");
    let (a, b) = (serial.1.device(), queued.1.device());
    assert_eq!(a.stats(), b.stats(), "{context}: device stats differ");
    assert_eq!(a.mod_seq(), b.mod_seq(), "{context}: modification clocks differ");
    let chips = a.config().chips();
    assert_eq!(chips, b.config().chips());
    for chip in 0..chips {
        assert_eq!(
            a.chip(ChipId(chip)).unwrap(),
            b.chip(ChipId(chip)).unwrap(),
            "{context}: chip {chip} state differs"
        );
    }
    assert_eq!(serial.1.metrics(), queued.1.metrics(), "{context}: FTL metrics differ");
}

fn synthetic_traces() -> Vec<Trace> {
    let config = SyntheticConfig {
        requests: 1_500,
        seed: 7,
        working_set_bytes: 2 * 1024 * 1024,
        ..Default::default()
    };
    vec![
        synthetic::media_server(config),
        synthetic::web_sql_server(config),
        synthetic::skewed(config, SkewedParams::default()),
        synthetic::skewed(
            SyntheticConfig { seed: 91, ..config },
            SkewedParams { zipf_exponent: 1.2, read_ratio: 0.85, ..SkewedParams::default() },
        ),
    ]
}

#[test]
fn qd1_is_bit_identical_for_both_ftls_on_synthetic_and_zipf_traces() {
    let serial_replayer = Replayer::new(RunOptions::default());
    let queued_replayer = QueuedReplayer::new(RunOptions::default(), 1);
    for trace in synthetic_traces() {
        for chips in [1usize, 4] {
            let context = format!("{} on {chips} chip(s)", trace.name());
            {
                let mut serial_ftl = conventional(chips);
                let mut queued_ftl = conventional(chips);
                let serial = serial_replayer.run_mut(&mut serial_ftl, &trace).unwrap();
                let queued = queued_replayer.run_mut(&mut queued_ftl, &trace).unwrap();
                assert_bit_identical(
                    (&serial, &serial_ftl),
                    (&queued, &queued_ftl),
                    &format!("conventional, {context}"),
                );
            }
            {
                let mut serial_ftl = ppb(chips);
                let mut queued_ftl = ppb(chips);
                let serial = serial_replayer.run_mut(&mut serial_ftl, &trace).unwrap();
                let queued = queued_replayer.run_mut(&mut queued_ftl, &trace).unwrap();
                assert_bit_identical(
                    (&serial, &serial_ftl),
                    (&queued, &queued_ftl),
                    &format!("ppb, {context}"),
                );
            }
        }
    }
}

#[test]
fn qd1_is_bit_identical_without_prefill_too() {
    // Unmapped-read skipping is a separate code path in both replayers.
    let options = RunOptions { prefill: false, ..RunOptions::default() };
    let trace = synthetic::skewed(
        SyntheticConfig { requests: 800, seed: 3, working_set_bytes: 2 * 1024 * 1024, ..Default::default() },
        SkewedParams { read_ratio: 0.7, ..SkewedParams::default() },
    );
    let mut serial_ftl = conventional(2);
    let mut queued_ftl = conventional(2);
    let serial = Replayer::new(options).run_mut(&mut serial_ftl, &trace).unwrap();
    let queued = QueuedReplayer::new(options, 1).run_mut(&mut queued_ftl, &trace).unwrap();
    assert_bit_identical((&serial, &serial_ftl), (&queued, &queued_ftl), "no-prefill");
}

/// The redesign's acceptance criterion: on an 8-chip device, QD 64 beats QD 1 on
/// a read-heavy trace, and the percentile fields are populated.
#[test]
fn qd64_on_8_chips_outruns_qd1_on_a_read_heavy_trace() {
    let trace = synthetic::skewed(
        SyntheticConfig { requests: 4_000, seed: 11, working_set_bytes: 4 * 1024 * 1024, ..Default::default() },
        SkewedParams {
            read_ratio: 0.9,
            min_request_bytes: 4096,
            max_request_bytes: 4096,
            ..SkewedParams::default()
        },
    );
    let qd1 = QueuedReplayer::new(RunOptions::default(), 1).run(conventional(8), &trace).unwrap();
    let qd64 =
        QueuedReplayer::new(RunOptions::default(), 64).run(conventional(8), &trace).unwrap();

    assert_eq!(qd1.queue_depth, 1);
    assert_eq!(qd64.queue_depth, 64);
    // Same device work at both depths; only the timing overlay differs.
    assert_eq!(qd1.host_reads, qd64.host_reads);
    assert_eq!(qd1.erased_blocks, qd64.erased_blocks);
    assert!(
        qd64.request_iops() > qd1.request_iops() * 2.0,
        "QD64 should clearly outrun QD1 on 8 chips: {} vs {} IOPS",
        qd64.request_iops(),
        qd1.request_iops()
    );
    for summary in [&qd1, &qd64] {
        let read = &summary.read_latency;
        assert!(read.p50 > vflash::nand::Nanos::ZERO);
        assert!(read.p50 <= read.p95 && read.p95 <= read.p99 && read.p99 <= read.max);
        assert!(summary.request_iops() > 0.0);
    }
    // Depth trades tail latency for throughput.
    assert!(qd64.read_latency.p99 >= qd1.read_latency.p99);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random traces (op mix, offsets, lengths) keep the QD-1 guarantee for both
    /// FTLs on a multi-chip device.
    #[test]
    fn qd1_bit_identity_holds_on_random_traces(
        ops in proptest::collection::vec(
            (0u8..2, 0u64..512, 1u32..40_000),
            1..120,
        ),
        chips in 1usize..5,
    ) {
        let requests: Vec<IoRequest> = ops
            .iter()
            .enumerate()
            .map(|(i, &(op, page, len))| {
                let op = if op == 0 { IoOp::Read } else { IoOp::Write };
                IoRequest::new(i as u64, op, page * 4096, len)
            })
            .collect();
        let trace = Trace::new("random", requests);

        let mut serial_ftl = conventional(chips);
        let mut queued_ftl = conventional(chips);
        let serial = Replayer::new(RunOptions::default())
            .run_mut(&mut serial_ftl, &trace)
            .unwrap();
        let queued = QueuedReplayer::new(RunOptions::default(), 1)
            .run_mut(&mut queued_ftl, &trace)
            .unwrap();
        prop_assert_eq!(&serial, &queued);
        prop_assert_eq!(serial_ftl.device().stats(), queued_ftl.device().stats());
        for chip in 0..chips {
            prop_assert_eq!(
                serial_ftl.device().chip(ChipId(chip)).unwrap(),
                queued_ftl.device().chip(ChipId(chip)).unwrap()
            );
        }

        let mut serial_ppb = ppb(chips);
        let mut queued_ppb = ppb(chips);
        let serial = Replayer::new(RunOptions::default())
            .run_mut(&mut serial_ppb, &trace)
            .unwrap();
        let queued = QueuedReplayer::new(RunOptions::default(), 1)
            .run_mut(&mut queued_ppb, &trace)
            .unwrap();
        prop_assert_eq!(&serial, &queued);
        prop_assert_eq!(serial_ppb.device().stats(), queued_ppb.device().stats());
    }

    /// At any depth, device-visible work is identical to the serial replay; only
    /// timing differs. (The timing overlay must never change what the FTL does.)
    #[test]
    fn any_depth_preserves_device_state_evolution(
        depth in 1usize..80,
        seed in 0u64..1_000,
    ) {
        let trace = synthetic::skewed(
            SyntheticConfig { requests: 300, seed, working_set_bytes: 1024 * 1024, ..Default::default() },
            SkewedParams::default(),
        );
        let serial = Replayer::new(RunOptions::default()).run(conventional(4), &trace).unwrap();
        let queued = QueuedReplayer::new(RunOptions::default(), depth)
            .run(conventional(4), &trace)
            .unwrap();
        prop_assert_eq!(serial.host_reads, queued.host_reads);
        prop_assert_eq!(serial.host_writes, queued.host_writes);
        prop_assert_eq!(serial.read_time, queued.read_time);
        prop_assert_eq!(serial.write_time, queued.write_time);
        prop_assert_eq!(serial.erased_blocks, queued.erased_blocks);
        prop_assert_eq!(serial.device_makespan, queued.device_makespan);
        // The overlay is bounded below by the busiest chip and above by the
        // serial sum.
        prop_assert!(queued.host_elapsed >= queued.device_makespan);
        prop_assert!(queued.host_elapsed <= serial.host_elapsed);
    }
}
