//! Property-based contracts of the batched submission path
//! (`FlashTranslationLayer::submit_batch`), for both FTLs, with fault
//! injection off and on:
//!
//! * the batch makespan never exceeds the serial sum of the per-request
//!   latencies (chip overlap can only help),
//! * the batch makespan is never below the busiest chip's serial time (a chip
//!   can only do one op at a time),
//! * a batch of one request is bit-identical to a scalar `submit` — same
//!   completion, same device evolution, same metrics.

use proptest::prelude::*;
use vflash::ftl::{
    ConventionalFtl, FlashTranslationLayer, FtlConfig, IoRequest, Lpn,
};
use vflash::nand::{FaultConfig, NandConfig, NandDevice, Nanos};
use vflash::ppb::{PpbConfig, PpbFtl};

/// A compact encoding of one batched host operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write { lpn: u64, small: bool },
    Read { lpn: u64 },
}

impl Op {
    fn request(self, page_bytes: u32) -> IoRequest {
        match self {
            Op::Write { lpn, small } => {
                let bytes = if small { 512 } else { 16 * page_bytes };
                IoRequest::write(Lpn(lpn), bytes)
            }
            Op::Read { lpn } => IoRequest::read(Lpn(lpn)),
        }
    }
}

fn arb_ops(logical: u64) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..logical, any::<bool>()).prop_map(|(lpn, small)| Op::Write { lpn, small }),
            (0..logical).prop_map(|lpn| Op::Read { lpn }),
        ],
        1..48,
    )
}

const PAGE_BYTES: u32 = 4096;

fn device(faults: Option<u64>) -> NandDevice {
    let mut builder = NandConfig::builder()
        .chips(4)
        .blocks_per_chip(16)
        .pages_per_block(8)
        .page_size_bytes(PAGE_BYTES as usize)
        .speed_ratio(4.0);
    if let Some(seed) = faults {
        builder = builder.faults(FaultConfig {
            rber_scale: 3.0,
            ..FaultConfig::enabled(seed)
        });
    }
    NandDevice::new(builder.build().expect("valid test geometry"))
}

fn conventional(faults: Option<u64>) -> ConventionalFtl {
    ConventionalFtl::new(device(faults), FtlConfig::default()).expect("ftl builds")
}

fn ppb(faults: Option<u64>) -> PpbFtl {
    PpbFtl::new(device(faults), PpbConfig::default()).expect("ftl builds")
}

/// Writes every logical page once so subsequent reads are all valid. Returns
/// `false` when fault injection wore the device into read-only mode first —
/// the timing properties are vacuous on a dead device.
fn prefill(ftl: &mut dyn FlashTranslationLayer) -> bool {
    for lpn in 0..ftl.logical_pages() {
        match ftl.submit(IoRequest::write(Lpn(lpn), 16 * PAGE_BYTES)) {
            Ok(_) => {}
            Err(vflash::ftl::FtlError::ReadOnly) => return false,
            Err(err) => panic!("prefill write failed: {err:?}"),
        }
    }
    true
}

/// Submits `ops` as one batch and checks the two makespan bounds.
fn check_batch_bounds(ftl: &mut dyn FlashTranslationLayer, ops: &[Op]) {
    if !prefill(ftl) {
        return;
    }
    let chips = ftl.device().config().chips();
    // Stripe the write stream like a depth>1 host would, so batches genuinely
    // overlap and the bounds are exercised away from the degenerate
    // makespan == serial case.
    ftl.set_write_stripe(chips);
    ftl.device_mut().set_op_tracing(true);
    let batch: Vec<IoRequest> = ops.iter().map(|op| op.request(PAGE_BYTES)).collect();
    let result = match ftl.submit_batch(&batch) {
        Ok(result) => result,
        Err(vflash::ftl::FtlError::ReadOnly) => return,
        Err(err) => panic!("batch failed: {err:?}"),
    };
    assert_eq!(result.len(), batch.len());

    let serial = result.serial_time();
    assert!(
        result.makespan <= serial,
        "makespan {:?} exceeds the serial sum {:?}",
        result.makespan,
        serial
    );

    let mut per_chip = vec![Nanos::ZERO; chips];
    for completion in &result.completions {
        for op in ftl.device().ops(completion.ops) {
            per_chip[op.chip.0] += op.latency;
        }
    }
    let busiest = per_chip.into_iter().max().unwrap_or(Nanos::ZERO);
    assert!(
        result.makespan >= busiest,
        "makespan {:?} undercuts the busiest chip's serial time {:?}",
        result.makespan,
        busiest
    );

    // Every per-request finish time is within the makespan.
    for finish in &result.finish_times {
        assert!(*finish <= result.makespan);
    }
}

/// Replays `ops` through a scalar FTL and a size-1-batch FTL and demands
/// bit-identical completions, metrics and device evolution.
fn check_single_request_identity(
    mut scalar: Box<dyn FlashTranslationLayer>,
    mut batched: Box<dyn FlashTranslationLayer>,
    ops: &[Op],
) {
    let alive = prefill(scalar.as_mut());
    assert_eq!(alive, prefill(batched.as_mut()), "prefill evolution diverged");
    if !alive {
        return;
    }
    let mut batches = 0;
    for op in ops {
        let request = op.request(PAGE_BYTES);
        let expected = scalar.submit(request);
        let batch = batched.submit_batch(std::slice::from_ref(&request));
        match (expected, batch) {
            (Ok(expected), Ok(batch)) => {
                batches += 1;
                assert_eq!(batch.completions[0], expected, "completion diverged on {op:?}");
                assert_eq!(batch.makespan, expected.latency);
                assert_eq!(batch.finish_times, vec![expected.latency]);
            }
            // Identical errors (e.g. the device going read-only) are identity
            // too; stop there — the scalar side has applied the request's
            // partial effects in submit order, same as the batch.
            (Err(a), Err(b)) => {
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "errors diverged on {op:?}");
                break;
            }
            (expected, batch) => {
                panic!("one side failed on {op:?}: scalar {expected:?}, batch {batch:?}");
            }
        }
    }
    // The batched side only differs in its batching counters.
    let mut batched_metrics = *batched.metrics();
    assert_eq!(batched_metrics.batched_submissions, batches);
    assert_eq!(batched_metrics.batched_pages, batches);
    batched_metrics.batched_submissions = 0;
    batched_metrics.batched_pages = 0;
    assert_eq!(batched_metrics, *scalar.metrics());
    assert_eq!(batched.device().makespan(), scalar.device().makespan());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_makespan_is_bounded_on_both_ftls(ops in arb_ops(96), seed in any::<u64>()) {
        for faults in [None, Some(seed)] {
            check_batch_bounds(&mut conventional(faults), &ops);
            check_batch_bounds(&mut ppb(faults), &ops);
        }
    }

    #[test]
    fn single_request_batches_match_scalar_submission(ops in arb_ops(96), seed in any::<u64>()) {
        for faults in [None, Some(seed)] {
            check_single_request_identity(
                Box::new(conventional(faults)),
                Box::new(conventional(faults)),
                &ops,
            );
            check_single_request_identity(
                Box::new(ppb(faults)),
                Box::new(ppb(faults)),
                &ops,
            );
        }
    }
}
