//! Property-based integration tests across crates: whatever workload is thrown at
//! either FTL, data integrity and accounting invariants hold.

use proptest::prelude::*;
use vflash::ftl::{ConventionalFtl, FlashTranslationLayer, FtlConfig, Lpn};
use vflash::nand::{NandConfig, NandDevice};
use vflash::ppb::{PpbConfig, PpbFtl};

/// A compact encoding of a host operation for proptest generation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write { lpn: u64, small: bool },
    Read { lpn: u64 },
}

fn arb_ops(logical: u64) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..logical, any::<bool>()).prop_map(|(lpn, small)| Op::Write { lpn, small }),
            (0..logical).prop_map(|lpn| Op::Read { lpn }),
        ],
        1..400,
    )
}

fn device() -> NandDevice {
    NandDevice::new(
        NandConfig::builder()
            .chips(1)
            .blocks_per_chip(20)
            .pages_per_block(8)
            .page_size_bytes(4096)
            .speed_ratio(3.0)
            .build()
            .expect("valid test geometry"),
    )
}

fn apply_ops(ftl: &mut dyn FlashTranslationLayer, ops: &[Op]) -> Vec<bool> {
    let mut written = vec![false; ftl.logical_pages() as usize];
    for op in ops {
        match *op {
            Op::Write { lpn, small } => {
                let bytes = if small { 512 } else { 64 * 1024 };
                ftl.write(Lpn(lpn), bytes).expect("write succeeds");
                written[lpn as usize] = true;
            }
            Op::Read { lpn } => {
                let result = ftl.read(Lpn(lpn));
                assert_eq!(
                    result.is_ok(),
                    written[lpn as usize],
                    "read of LPN{lpn} disagreed with write history"
                );
            }
        }
    }
    written
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Both FTLs preserve every written logical page under arbitrary workloads, and
    /// their metrics add up.
    #[test]
    fn arbitrary_workloads_preserve_data(ops in arb_ops(120)) {
        let mut conventional =
            ConventionalFtl::new(device(), FtlConfig::default()).expect("ftl builds");
        let mut ppb = PpbFtl::new(
            device(),
            PpbConfig { ftl: FtlConfig::default(), ..PpbConfig::default() },
        )
        .expect("ftl builds");

        for ftl in [&mut conventional as &mut dyn FlashTranslationLayer, &mut ppb] {
            let written = apply_ops(ftl, &ops);
            // Every page that was ever written is still readable afterwards.
            for (lpn, was_written) in written.iter().enumerate() {
                if *was_written {
                    prop_assert!(ftl.read(Lpn(lpn as u64)).is_ok(), "lost LPN{lpn}");
                }
            }
            let metrics = ftl.metrics();
            prop_assert!(metrics.host_write_time >= metrics.gc_time);
            if metrics.host_writes > 0 {
                prop_assert!(metrics.write_amplification() >= 1.0);
            }
        }
    }

    /// The two FTLs always agree on how many host operations they served — the PPB
    /// machinery never drops or duplicates requests.
    #[test]
    fn ftls_agree_on_served_request_counts(ops in arb_ops(120)) {
        let mut conventional =
            ConventionalFtl::new(device(), FtlConfig::default()).expect("ftl builds");
        let mut ppb = PpbFtl::new(device(), PpbConfig::default()).expect("ftl builds");
        apply_ops(&mut conventional, &ops);
        apply_ops(&mut ppb, &ops);
        prop_assert_eq!(conventional.metrics().host_writes, ppb.metrics().host_writes);
        prop_assert_eq!(conventional.metrics().host_reads, ppb.metrics().host_reads);
    }
}
