//! Property-based tests of the host tier: the stripe map is a bijection, the
//! writeback cache keeps its residency/dirtiness/coherence invariants under
//! arbitrary op sequences, weighted-share QoS is work-conserving and
//! weight-monotone, and fleet grid runs are bit-identical across
//! `ParallelRunner` worker counts.

use proptest::prelude::*;

use vflash::fleet::{
    run_fleet_grid, CacheConfig, Fleet, FleetConfig, FleetDriver, StripeMap, TenantWeight,
    WritebackCache, dispatch_order,
};
use vflash::ftl::{ConventionalFtl, FtlConfig};
use vflash::nand::{NandConfig, NandDevice};
use vflash::sim::experiments::ExperimentScale;
use vflash::sim::{ExperimentGrid, ParallelRunner, RunOptions};
use vflash::trace::synthetic::{self, SyntheticConfig};

// ---------------------------------------------------------------------------
// Stripe map
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `locate` and `fleet_lpn` are exact inverses over the whole keyspace:
    /// every fleet LPN round-trips, and so does every `(lane, offset)` pair.
    #[test]
    fn stripe_map_round_trips(
        width in 1usize..9,
        lane_pages in 1u64..2_000,
        probe in 0u64..1_000_000,
    ) {
        let map = StripeMap::new(width, lane_pages);
        prop_assert_eq!(map.fleet_pages(), width as u64 * lane_pages);

        let fleet_lpn = probe % map.fleet_pages();
        let (lane, offset) = map.locate(fleet_lpn);
        prop_assert!(lane < width);
        prop_assert!(offset < lane_pages);
        prop_assert_eq!(map.fleet_lpn(lane, offset), fleet_lpn);

        // The inverse direction: an arbitrary in-range pair names exactly one
        // fleet LPN that locates back to it.
        let lane = (probe as usize) % width;
        let offset = (probe / 7) % lane_pages;
        prop_assert_eq!(map.locate(map.fleet_lpn(lane, offset)), (lane, offset));
    }

    /// Consecutive fleet LPNs land on consecutive lanes — the round-robin
    /// interleave the fan-out effect depends on.
    #[test]
    fn stripe_map_interleaves_round_robin(
        width in 1usize..9,
        lane_pages in 1u64..2_000,
        lpn in 0u64..1_000_000,
    ) {
        let map = StripeMap::new(width, lane_pages);
        let lpn = lpn % map.fleet_pages();
        let (lane, _) = map.locate(lpn);
        prop_assert_eq!(lane, (lpn % width as u64) as usize);
    }
}

// ---------------------------------------------------------------------------
// Writeback cache
// ---------------------------------------------------------------------------

/// A compact encoding of one cache operation for proptest generation.
#[derive(Debug, Clone, Copy)]
enum CacheOp {
    Write(u64),
    Read(u64),
    WriteAround(u64),
    Flush,
}

fn arb_cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..16).prop_map(CacheOp::Write),
            (0u64..16).prop_map(CacheOp::Read),
            (0u64..16).prop_map(CacheOp::WriteAround),
            Just(CacheOp::Flush),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary op sequences the cache never violates its structural
    /// invariants: dirty ⊆ resident, residency ≤ capacity, flushes drain the
    /// dirty set to at most the threshold, write-arounds drop the stale copy,
    /// and an absorbed write always hits on readback (read-your-writes).
    #[test]
    fn cache_invariants_hold_under_arbitrary_ops(
        capacity in 1usize..8,
        threshold_pct in 25u32..101,
        ops in arb_cache_ops(),
    ) {
        let config = CacheConfig {
            capacity_pages: capacity,
            dirty_flush_threshold: threshold_pct as f64 / 100.0,
            ..CacheConfig::default()
        };
        let mut cache = WritebackCache::new(config);
        let mut write_calls = 0u64;
        for op in &ops {
            match *op {
                CacheOp::Write(lpn) => {
                    let evicted = cache.write(lpn);
                    write_calls += 1;
                    prop_assert!(evicted.len() <= 1, "one insert evicts at most one page");
                    for victim in evicted {
                        prop_assert!(!cache.is_resident(victim), "evicted pages leave");
                    }
                    // Read-your-writes: the page just absorbed must hit.
                    prop_assert!(cache.is_resident(lpn) && cache.is_dirty(lpn));
                    prop_assert!(cache.read(lpn), "absorbed write must hit on readback");
                }
                CacheOp::Read(lpn) => {
                    let resident_before = cache.is_resident(lpn);
                    let len_before = cache.len();
                    prop_assert_eq!(cache.read(lpn), resident_before);
                    // Read misses never allocate.
                    prop_assert_eq!(cache.len(), len_before);
                }
                CacheOp::WriteAround(lpn) => {
                    cache.write_around(lpn);
                    prop_assert!(!cache.is_resident(lpn), "write-around drops the stale copy");
                }
                CacheOp::Flush => {
                    let flushed = cache.flush_to_threshold();
                    prop_assert!(
                        !cache.over_threshold(),
                        "a flush must drain to at most the threshold"
                    );
                    prop_assert!(cache.dirty_len() <= config.dirty_limit());
                    for lpn in flushed {
                        prop_assert!(
                            cache.is_resident(lpn) && !cache.is_dirty(lpn),
                            "flushed pages stay resident, clean"
                        );
                    }
                }
            }
            // Structural invariants after every single operation.
            prop_assert!(cache.dirty_len() <= cache.len(), "dirty ⊆ resident");
            prop_assert!(cache.len() <= capacity, "residency bounded by capacity");
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.writes_absorbed, write_calls);
        prop_assert!(
            stats.writebacks <= stats.writes_absorbed,
            "every writeback stems from an absorbed write"
        );
    }
}

// ---------------------------------------------------------------------------
// Weighted-share QoS
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dispatcher is work-conserving: every request is dispatched exactly
    /// once (the order is a permutation of `0..total`), for any tenant set.
    #[test]
    fn dispatch_order_is_a_permutation(
        weights in proptest::collection::vec(1u64..8, 1..5),
        total in 0usize..120,
    ) {
        let tenants: Vec<TenantWeight> = weights
            .iter()
            .enumerate()
            .map(|(index, &weight)| TenantWeight::new(format!("t{index}"), weight))
            .collect();
        let order = dispatch_order(&tenants, total);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..total).collect::<Vec<_>>());
    }

    /// Weight monotonicity: raising one tenant's weight (all else equal) never
    /// lowers that tenant's share of any dispatch prefix.
    #[test]
    fn raising_a_weight_never_lowers_any_prefix_share(
        base in 1u64..8,
        other in 1u64..8,
        bump in 1u64..4,
        total in 1usize..100,
    ) {
        let low = dispatch_order(
            &[TenantWeight::new("x", base), TenantWeight::new("y", other)],
            total,
        );
        let high = dispatch_order(
            &[TenantWeight::new("x", base + bump), TenantWeight::new("y", other)],
            total,
        );
        // Tenant x owns the even request indices (round-robin assignment).
        for prefix in 1..=total {
            let share = |order: &[usize]| {
                order[..prefix].iter().filter(|&&request| request % 2 == 0).count()
            };
            prop_assert!(
                share(&high) >= share(&low),
                "prefix {} share dropped when x's weight rose {} -> {}",
                prefix,
                base,
                base + bump
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet determinism
// ---------------------------------------------------------------------------

fn tiny_scale() -> ExperimentScale {
    ExperimentScale {
        requests: 200,
        working_set_bytes: 8 * 1024 * 1024,
        chips: 2,
        ..ExperimentScale::quick()
    }
}

/// Fleet grid runs are a pure function of the grid: every worker count the
/// ISSUE names produces the bit-identical result list, including all latency
/// percentiles and per-lane summaries.
#[test]
fn fleet_grid_is_bit_identical_across_worker_counts() {
    let grid = ExperimentGrid { fleet_sizes: vec![1, 2, 4], ..ExperimentGrid::fleet_sweep(tiny_scale()) };
    let serial = ParallelRunner::run_serial_map(&grid, vflash::fleet::run_fleet_cell).unwrap();
    assert_eq!(serial.len(), 12, "3 widths x 2 workloads x 2 FTLs");
    for workers in [2, 3, 5, 32] {
        let parallel = run_fleet_grid(&ParallelRunner::new(workers), &grid).unwrap();
        assert_eq!(serial, parallel, "{workers} workers diverged from the serial run");
    }
}

/// A cached, multi-tenant fleet is just as deterministic: two identically
/// built fleets replaying the same trace report the bit-identical summary
/// (the cache's LRU is stamp-ordered, never hash-ordered).
#[test]
fn cached_multi_tenant_runs_are_bit_reproducible() {
    let lane = || {
        let device = NandDevice::new(
            NandConfig::builder()
                .chips(2)
                .blocks_per_chip(32)
                .pages_per_block(16)
                .page_size_bytes(8192)
                .build()
                .unwrap(),
        );
        ConventionalFtl::new(device, FtlConfig::default()).unwrap()
    };
    let config = FleetConfig {
        cache: Some(CacheConfig {
            capacity_pages: 128,
            dirty_flush_threshold: 0.5,
            ..CacheConfig::default()
        }),
        tenants: vec![TenantWeight::new("gold", 2), TenantWeight::new("bronze", 1)],
    };
    let trace = synthetic::web_sql_server(SyntheticConfig {
        requests: 500,
        working_set_bytes: 2 * 1024 * 1024,
        ..Default::default()
    });
    let driver = FleetDriver::closed_loop(RunOptions::default(), 4);
    let first = driver.run(Fleet::new(vec![lane(), lane()], config.clone()), &trace).unwrap();
    let second = driver.run(Fleet::new(vec![lane(), lane()], config), &trace).unwrap();
    assert_eq!(first, second);
    assert!(first.cache.read_hits + first.cache.writes_absorbed > 0, "the cache saw traffic");
    assert_eq!(first.tenants.len(), 2);
}
