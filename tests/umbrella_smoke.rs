//! Smoke test for the umbrella crate's re-export wiring: everything a downstream
//! user needs for the paper's headline flow must be reachable through `vflash::*`
//! paths alone (guarding the `pub use` lines in `src/lib.rs` and the crate-root
//! doctest).

use vflash::ftl::{FlashTranslationLayer, FtlError, Lpn};
use vflash::nand::{NandConfig, NandDevice, Nanos, SpeedProfile};
use vflash::ppb::{PpbConfig, PpbFtl};

#[test]
fn ppb_ftl_round_trips_through_reexported_api() -> Result<(), FtlError> {
    let config = NandConfig::builder()
        .chips(1)
        .blocks_per_chip(32)
        .pages_per_block(16)
        .page_size_bytes(4 * 1024)
        .speed_ratio(3.0)
        .speed_profile(SpeedProfile::Linear)
        .build()
        .expect("valid geometry");
    let mut ftl = PpbFtl::new(NandDevice::new(config), PpbConfig::default())?;

    // Write a handful of logical pages (small requests classify hot), then read
    // every one of them back.
    for lpn in 0..24u64 {
        let write_latency = ftl.write(Lpn(lpn), 512)?;
        assert!(write_latency > Nanos::ZERO, "write of LPN{lpn} reported zero latency");
    }
    for lpn in 0..24u64 {
        let read_latency = ftl.read(Lpn(lpn))?;
        assert!(read_latency > Nanos::ZERO, "read of LPN{lpn} reported zero latency");
    }

    // Reads of never-written (but in-range) pages keep failing cleanly through the
    // same paths.
    let unwritten = Lpn(ftl.logical_pages() - 1);
    assert!(matches!(ftl.read(unwritten), Err(FtlError::UnmappedRead { .. })));

    let metrics = ftl.metrics();
    assert_eq!(metrics.host_writes, 24);
    assert_eq!(metrics.host_reads, 24);
    Ok(())
}

#[test]
fn every_reexported_module_is_reachable() {
    // One cheap touch per re-exported crate so a dropped `pub use` fails to compile.
    let trace = vflash::trace::synthetic::web_sql_server(vflash::trace::synthetic::SyntheticConfig {
        requests: 100,
        seed: 1,
        working_set_bytes: 4 * 1024 * 1024,
        ..Default::default()
    });
    assert_eq!(trace.len(), 100);

    let device = NandDevice::new(NandConfig::small());
    let ftl = vflash::ftl::ConventionalFtl::new(device, vflash::ftl::FtlConfig::default())
        .expect("ftl builds");
    // Requests span multiple flash pages, so the replayer serves at least one page
    // operation per trace request.
    let summary = vflash::sim::Replayer::new(vflash::sim::RunOptions::default())
        .run(ftl, &trace)
        .expect("replay succeeds");
    assert!(summary.host_reads + summary.host_writes >= 100);
}
