//! Cross-crate integration tests: the whole stack (device model, trace generators,
//! FTLs, replayer) wired together, checking the paper's headline claims hold in
//! direction on scaled-down experiments.

use vflash::sim::experiments::{
    compare, erase_count_rows, read_latency_sweep, write_latency_sweep, ExperimentScale, Workload,
};

fn test_scale() -> ExperimentScale {
    // Long enough for promotions, rewrites and garbage collection to shape data
    // placement; small enough to keep the whole suite fast.
    ExperimentScale {
        requests: 10_000,
        working_set_bytes: 20 * 1024 * 1024,
        ..ExperimentScale::quick()
    }
}

/// The headline claim: PPB improves read performance on the re-read-heavy web/SQL
/// workload while leaving write latency essentially unchanged.
#[test]
fn ppb_improves_web_reads_without_write_penalty() {
    let comparison = compare(Workload::WebSqlServer, 16 * 1024, 4.0, &test_scale()).unwrap();
    assert!(
        comparison.read_enhancement_pct() > 1.0,
        "expected a clear read win, got {:.2}%",
        comparison.read_enhancement_pct()
    );
    assert!(
        comparison.write_enhancement_pct().abs() < 5.0,
        "write latency should stay near-identical, got {:.2}%",
        comparison.write_enhancement_pct()
    );
}

/// PPB never makes reads slower on the media-server workload either (the gain is
/// smaller because the workload is dominated by large sequential reads).
#[test]
fn ppb_does_not_hurt_media_server_reads() {
    let comparison = compare(Workload::MediaServer, 16 * 1024, 2.0, &test_scale()).unwrap();
    assert!(
        comparison.read_enhancement_pct() > -1.0,
        "media-server reads regressed by {:.2}%",
        comparison.read_enhancement_pct()
    );
}

/// Figure 13/14 trend: the PPB read advantage grows (or at least does not shrink to a
/// loss) as the speed difference widens from 2x to 5x.
#[test]
fn read_advantage_holds_across_speed_ratios() {
    let rows = read_latency_sweep(Workload::WebSqlServer, &test_scale()).unwrap();
    assert_eq!(rows.len(), 4);
    for row in &rows {
        assert!(
            row.ppb <= row.conventional,
            "at {}x the PPB read latency {} exceeded conventional {}",
            row.speed_ratio,
            row.ppb,
            row.conventional
        );
    }
    // The absolute gap at 5x should be at least as large as at 2x.
    let gap_2x = rows[0].conventional.as_nanos() as i128 - rows[0].ppb.as_nanos() as i128;
    let gap_5x = rows[3].conventional.as_nanos() as i128 - rows[3].ppb.as_nanos() as i128;
    assert!(
        gap_5x >= gap_2x,
        "read-latency gap shrank from {gap_2x} at 2x to {gap_5x} at 5x"
    );
}

/// Figure 16/17 trend: write latency stays essentially identical across the sweep.
#[test]
fn write_latency_is_preserved_across_speed_ratios() {
    for workload in Workload::ALL {
        let rows = write_latency_sweep(workload, &test_scale()).unwrap();
        for row in rows {
            let baseline = row.conventional.as_nanos() as f64;
            let delta = (row.ppb.as_nanos() as f64 - baseline).abs() / baseline * 100.0;
            assert!(
                delta < 5.0,
                "{workload}: write latency changed by {delta:.2}% at {}x",
                row.speed_ratio
            );
        }
    }
}

/// Figure 18 trend: PPB does not inflate the erased-block count, i.e. garbage
/// collection efficiency is preserved.
#[test]
fn erase_counts_are_not_inflated() {
    for row in erase_count_rows(&test_scale()).unwrap() {
        let baseline = row.conventional.max(1) as f64;
        let increase = (row.ppb as f64 - baseline) / baseline * 100.0;
        assert!(
            increase <= 20.0,
            "{}: erased blocks grew by {increase:.1}% ({} -> {})",
            row.workload,
            row.conventional,
            row.ppb
        );
    }
}

/// Both FTLs serve exactly the same request stream — a sanity check that the
/// comparison is apples to apples.
#[test]
fn both_ftls_serve_identical_request_counts() {
    let comparison = compare(Workload::MediaServer, 8 * 1024, 3.0, &test_scale()).unwrap();
    assert_eq!(comparison.baseline.host_reads, comparison.variant.host_reads);
    assert_eq!(comparison.baseline.host_writes, comparison.variant.host_writes);
    assert!(comparison.baseline.host_reads > 0);
    assert!(comparison.baseline.host_writes > 0);
}
